/**
 * @file
 * Adaptive-mapping scheduler tests: the Fig. 18 decision flow.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "core/adaptive_mapping.h"

namespace agsim::core {
namespace {

/** Scheduler with a trained predictor and latency-sensitive QoS model. */
AdaptiveMappingScheduler
trainedScheduler()
{
    AdaptiveMappingScheduler scheduler;
    // Frequency predictor: 4.6 GHz intercept, -2.5 MHz/kMIPS.
    for (double mips = 5000; mips <= 80000; mips += 5000)
        scheduler.observeFrequency(mips, Hertz{4.6e9 - 2500.0 * mips});
    // QoS model: p90 improves 5 ms per 10 MHz; with the 8% tail guard
    // a 0.5 s target lands near 4.53 GHz, admitting only the lightest
    // co-runner.
    for (double f = 4.40e9; f <= 4.60e9; f += 0.02e9)
        scheduler.observeQos(Hertz{f}, 0.520 - (f - 4.40e9) * 5e-10);
    return scheduler;
}

std::vector<CorunnerOption>
candidates()
{
    // The paper's light/medium/heavy co-runners (Sec. 5.2.2).
    return {{"light", 13000.0, 100.0},
            {"medium", 28000.0, 300.0},
            {"heavy", 70000.0, 200.0}};
}

TEST(AdaptiveMapping, KeepsMappingWhenQosHealthy)
{
    const auto scheduler = trainedScheduler();
    const auto decision = scheduler.decide(0.10, 0.5, 4500.0, 2,
                                           candidates());
    EXPECT_FALSE(decision.swap);
}

TEST(AdaptiveMapping, SwapsHeavyForFittingCorunner)
{
    const auto scheduler = trainedScheduler();
    // Violating on the heavy co-runner (index 2).
    const auto decision = scheduler.decide(0.40, 0.5, 4500.0, 2,
                                           candidates());
    EXPECT_TRUE(decision.swap);
    EXPECT_NE(decision.corunnerIndex, 2u);
    EXPECT_GT(decision.requiredFrequency, Hertz{0.0});
    EXPECT_GT(decision.corunnerMipsBudget, 0.0);
    // Picks the heaviest candidate that fits the budget.
    const auto c = candidates();
    EXPECT_LE(c[decision.corunnerIndex].totalMips,
              decision.corunnerMipsBudget);
}

TEST(AdaptiveMapping, TightTargetFallsBackToLightest)
{
    auto scheduler = trainedScheduler();
    // Target far below anything achievable: budget collapses to zero.
    const auto decision = scheduler.decide(0.40, 0.300, 4500.0, 2,
                                           candidates());
    EXPECT_TRUE(decision.swap);
    EXPECT_EQ(decision.corunnerIndex, 0u); // light has lowest MIPS
    EXPECT_DOUBLE_EQ(decision.corunnerMipsBudget, 0.0);
}

TEST(AdaptiveMapping, GenerousTargetKeepsHeavy)
{
    const auto scheduler = trainedScheduler();
    // Violation triggered but the target is loose: heavy fits; since
    // heavy is already scheduled, no swap.
    const auto decision = scheduler.decide(0.40, 0.600, 4500.0, 2,
                                           candidates());
    EXPECT_FALSE(decision.swap);
    EXPECT_EQ(decision.corunnerIndex, 2u);
}

chip::ChipHealthView
demotedHostView()
{
    chip::ChipHealthView view;
    view.state = chip::SafetyState::Demoted;
    view.commandedMode = chip::GuardbandMode::AdaptiveUndervolt;
    view.effectiveMode = chip::GuardbandMode::StaticGuardband;
    view.demotions = 1;
    return view;
}

TEST(AdaptiveMapping, DemotedHostDiscountsMipsBudget)
{
    const auto scheduler = trainedScheduler();
    const auto baseline = scheduler.decide(0.40, 0.5, 4500.0, 2,
                                           candidates());
    const auto view = demotedHostView();
    const auto demoted = scheduler.decide(0.40, 0.5, 4500.0, 2,
                                          candidates(), &view);
    const double discount =
        scheduler.params().demotedMipsDiscount;
    EXPECT_NEAR(demoted.corunnerMipsBudget,
                baseline.corunnerMipsBudget * (1.0 - discount), 1e-6);
    EXPECT_NE(demoted.reason.find("budget discounted: host demoted"),
              std::string::npos);
    EXPECT_EQ(baseline.reason.find("discounted"), std::string::npos);
}

TEST(AdaptiveMapping, HealthyOrStaticHostKeepsFullBudget)
{
    const auto scheduler = trainedScheduler();
    const auto baseline = scheduler.decide(0.40, 0.5, 4500.0, 2,
                                           candidates());

    chip::ChipHealthView healthy;
    healthy.state = chip::SafetyState::Monitoring;
    healthy.commandedMode = chip::GuardbandMode::AdaptiveUndervolt;
    healthy.effectiveMode = chip::GuardbandMode::AdaptiveUndervolt;
    const auto withHealthy = scheduler.decide(0.40, 0.5, 4500.0, 2,
                                              candidates(), &healthy);
    EXPECT_EQ(withHealthy.corunnerMipsBudget,
              baseline.corunnerMipsBudget);

    // A statically-commanded host never had adaptive headroom in the
    // first place, so demotion changes nothing for the predictor.
    auto staticHost = demotedHostView();
    staticHost.commandedMode = chip::GuardbandMode::StaticGuardband;
    const auto withStatic = scheduler.decide(0.40, 0.5, 4500.0, 2,
                                             candidates(), &staticHost);
    EXPECT_EQ(withStatic.corunnerMipsBudget,
              baseline.corunnerMipsBudget);
}

TEST(AdaptiveMapping, RejectsDiscountOutOfRange)
{
    AdaptiveMappingParams low;
    low.demotedMipsDiscount = -0.1;
    EXPECT_THROW(AdaptiveMappingScheduler{low}, ConfigError);
    AdaptiveMappingParams high;
    high.demotedMipsDiscount = 1.0;
    EXPECT_THROW(AdaptiveMappingScheduler{high}, ConfigError);
}

TEST(AdaptiveMapping, MemoryPathWhenNotFrequencySensitive)
{
    AdaptiveMappingScheduler scheduler;
    for (double mips = 5000; mips <= 80000; mips += 5000)
        scheduler.observeFrequency(mips, Hertz{4.6e9 - 2500.0 * mips});
    // QoS flat in frequency -> memory-contention branch.
    for (double f = 4.40e9; f <= 4.60e9; f += 0.02e9)
        scheduler.observeQos(Hertz{f}, 0.510);
    const auto decision = scheduler.decide(0.40, 0.5, 4500.0, 2,
                                           candidates());
    EXPECT_TRUE(decision.swap);
    // Lowest memory pressure is "light" (100.0).
    EXPECT_EQ(decision.corunnerIndex, 0u);
}

TEST(AdaptiveMapping, UntrainedModelsUseMemoryPath)
{
    AdaptiveMappingScheduler scheduler;
    const auto decision = scheduler.decide(0.40, 0.5, 4500.0, 1,
                                           candidates());
    EXPECT_TRUE(decision.swap);
    EXPECT_EQ(decision.corunnerIndex, 0u);
}

TEST(AdaptiveMapping, ThresholdIsConfigurable)
{
    AdaptiveMappingParams params;
    params.violationThreshold = 0.05;
    AdaptiveMappingScheduler scheduler(params);
    const auto decision = scheduler.decide(0.10, 0.5, 4500.0, 0,
                                           candidates());
    // 10% violation exceeds the 5% threshold -> acts.
    EXPECT_EQ(decision.swap || decision.corunnerIndex == 0, true);
    EXPECT_NE(decision.reason.find("co-runner"), std::string::npos);
}

std::vector<CorunnerPoolEntry>
pooled(size_t lightCount, size_t mediumCount, size_t heavyCount)
{
    const auto c = candidates();
    return {{c[0], lightCount}, {c[1], mediumCount}, {c[2], heavyCount}};
}

TEST(AdaptiveMappingPool, MultiAppSharesFinitePool)
{
    const auto scheduler = trainedScheduler();
    // Two violating apps both mapped on heavy; only ONE light instance
    // is free. The first (higher priority) app takes it; the second
    // falls back to whatever remains visible.
    std::vector<CriticalAppState> apps = {
        {"search-a", 0.40, 0.5, 4500.0, 2, {}},
        {"search-b", 0.40, 0.5, 4500.0, 2, {}},
    };
    auto pool = pooled(1, 0, 1);
    const auto decisions = scheduler.decideAll(apps, pool);
    ASSERT_EQ(decisions.size(), 2u);
    EXPECT_TRUE(decisions[0].swap);
    EXPECT_EQ(decisions[0].corunnerIndex, 0u); // takes the light slot
    // Light is now exhausted; app b sees only heavy (its own class,
    // one instance of which app a released).
    EXPECT_FALSE(decisions[1].swap);
    EXPECT_EQ(decisions[1].corunnerIndex, 2u);
    // Pool bookkeeping: a's heavy instance went back.
    EXPECT_EQ(pool[0].available, 0u);
    EXPECT_EQ(pool[2].available, 2u);
}

TEST(AdaptiveMappingPool, ReleasedInstanceServesNextApp)
{
    const auto scheduler = trainedScheduler();
    // App a swaps heavy -> light, releasing a heavy instance; app b
    // (healthy QoS) keeps its mapping untouched.
    std::vector<CriticalAppState> apps = {
        {"violating", 0.40, 0.5, 4500.0, 2, {}},
        {"healthy", 0.05, 0.5, 4500.0, 0, {}},
    };
    auto pool = pooled(1, 1, 0);
    const auto decisions = scheduler.decideAll(apps, pool);
    EXPECT_TRUE(decisions[0].swap);
    EXPECT_FALSE(decisions[1].swap);
    EXPECT_EQ(pool[2].available, 1u); // the released heavy instance
}

TEST(AdaptiveMappingPool, Validation)
{
    const auto scheduler = trainedScheduler();
    std::vector<CorunnerPoolEntry> empty;
    std::vector<CriticalAppState> apps = {{"a", 0.4, 0.5, 4500.0, 0, {}}};
    EXPECT_THROW(scheduler.decideAll(apps, empty), ConfigError);

    auto pool = pooled(1, 1, 1);
    apps[0].currentCorunner = 9;
    EXPECT_THROW(scheduler.decideAll(apps, pool), ConfigError);
}

TEST(AdaptiveMapping, Validation)
{
    const auto scheduler = trainedScheduler();
    EXPECT_THROW(scheduler.decide(0.4, 0.5, 4500.0, 0, {}), ConfigError);
    EXPECT_THROW(scheduler.decide(0.4, 0.5, 4500.0, 9, candidates()),
                 ConfigError);
    AdaptiveMappingParams bad;
    bad.violationThreshold = 1.5;
    EXPECT_THROW(AdaptiveMappingScheduler{bad}, ConfigError);
}

} // namespace
} // namespace agsim::core
