/**
 * @file
 * Arrival-process tests: shape correctness of every traffic kind and
 * the determinism contract the fleet service leans on (same seed ->
 * bit-identical count sequence, regardless of who else draws RNG or
 * whether telemetry/tracing is active).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "workload/arrivals.h"

namespace agsim::workload {
namespace {

constexpr Seconds kDt{0.01};

std::vector<uint64_t>
drawSequence(const ArrivalConfig &config, size_t steps)
{
    ArrivalProcess process(config);
    std::vector<uint64_t> counts;
    counts.reserve(steps);
    for (size_t k = 0; k < steps; ++k)
        counts.push_back(process.draw(kDt * double(k), kDt));
    return counts;
}

TEST(Arrivals, SteadyMeanMatchesRate)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Steady;
    config.baseRatePerSec = 2000.0;
    ArrivalProcess process(config);
    const size_t steps = 2000;
    uint64_t total = 0;
    for (size_t k = 0; k < steps; ++k)
        total += process.draw(kDt * double(k), kDt);
    const double expected =
        config.baseRatePerSec * kDt.value() * double(steps);
    // Poisson with ~40k expected events: 5 sigma is ~1000.
    EXPECT_NEAR(double(total), expected, 5.0 * std::sqrt(expected));
    EXPECT_EQ(process.totalDrawn(), total);
}

TEST(Arrivals, IdenticalSeedsAreBitIdentical)
{
    for (ArrivalKind kind :
         {ArrivalKind::Steady, ArrivalKind::Diurnal, ArrivalKind::Mmpp,
          ArrivalKind::FlashCrowd}) {
        ArrivalConfig config;
        config.kind = kind;
        EXPECT_EQ(drawSequence(config, 500), drawSequence(config, 500))
            << arrivalKindName(kind);
    }
}

TEST(Arrivals, SequenceUnaffectedByOtherRngStreams)
{
    // The service's worker count or telemetry setting must not bleed
    // into arrival draws: the process owns a private stream. Interleave
    // unrelated draws from other engines and compare.
    ArrivalConfig config;
    config.kind = ArrivalKind::Mmpp;
    const std::vector<uint64_t> clean = drawSequence(config, 300);

    ArrivalProcess process(config);
    Rng noise(12345, 99);
    std::vector<uint64_t> interleaved;
    for (size_t k = 0; k < 300; ++k) {
        (void)noise.uniform();
        interleaved.push_back(process.draw(kDt * double(k), kDt));
        (void)noise.poisson(3.0);
    }
    EXPECT_EQ(clean, interleaved);
}

TEST(Arrivals, ResetRewindsTheSequence)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Mmpp;
    ArrivalProcess process(config);
    std::vector<uint64_t> first;
    for (size_t k = 0; k < 200; ++k)
        first.push_back(process.draw(kDt * double(k), kDt));
    process.reset();
    EXPECT_EQ(process.totalDrawn(), 0u);
    std::vector<uint64_t> second;
    for (size_t k = 0; k < 200; ++k)
        second.push_back(process.draw(kDt * double(k), kDt));
    EXPECT_EQ(first, second);
}

TEST(Arrivals, DiurnalSweepsTroughToPeak)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Diurnal;
    config.baseRatePerSec = 1000.0;
    config.diurnalPeriod = Seconds{10.0};
    config.diurnalAmplitude = 0.5;
    ArrivalProcess process(config);
    // Trough at phase 0, peak at half period.
    EXPECT_NEAR(process.rate(Seconds{0.0}), 500.0, 1e-9);
    EXPECT_NEAR(process.rate(Seconds{5.0}), 1500.0, 1e-9);
    EXPECT_NEAR(process.rate(Seconds{10.0}), 500.0, 1e-9);
}

TEST(Arrivals, DiurnalTraceOverridesTheCosine)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Diurnal;
    config.baseRatePerSec = 100.0;
    config.diurnalPeriod = Seconds{4.0};
    config.diurnalTrace = {1.0, 2.0, 3.0, 0.5};
    ArrivalProcess process(config);
    EXPECT_NEAR(process.rate(Seconds{0.5}), 100.0, 1e-9);
    EXPECT_NEAR(process.rate(Seconds{1.5}), 200.0, 1e-9);
    EXPECT_NEAR(process.rate(Seconds{2.5}), 300.0, 1e-9);
    EXPECT_NEAR(process.rate(Seconds{3.5}), 50.0, 1e-9);
    // Wraps around the period.
    EXPECT_NEAR(process.rate(Seconds{4.5}), 100.0, 1e-9);
}

TEST(Arrivals, FlashCrowdRampsAndDecays)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::FlashCrowd;
    config.baseRatePerSec = 100.0;
    config.flashStart = Seconds{2.0};
    config.flashRise = Seconds{2.0};
    config.flashHold = Seconds{4.0};
    config.flashDecay = Seconds{2.0};
    config.flashMultiplier = 5.0;
    ArrivalProcess process(config);
    EXPECT_NEAR(process.rate(Seconds{0.0}), 100.0, 1e-9);
    EXPECT_NEAR(process.rate(Seconds{3.0}), 300.0, 1e-9); // mid-rise
    EXPECT_NEAR(process.rate(Seconds{5.0}), 500.0, 1e-9); // hold
    EXPECT_NEAR(process.rate(Seconds{9.0}), 300.0, 1e-9); // mid-decay
    EXPECT_NEAR(process.rate(Seconds{20.0}), 100.0, 1e-9);
}

TEST(Arrivals, MmppVisitsBothStates)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Mmpp;
    config.baseRatePerSec = 1000.0;
    config.burstMultiplier = 8.0;
    config.calmMeanDuration = Seconds{0.2};
    config.burstMeanDuration = Seconds{0.1};
    ArrivalProcess process(config);
    bool sawBurst = false;
    bool sawCalm = false;
    for (size_t k = 0; k < 2000; ++k) {
        process.draw(kDt * double(k), kDt);
        (process.bursting() ? sawBurst : sawCalm) = true;
    }
    EXPECT_TRUE(sawBurst);
    EXPECT_TRUE(sawCalm);
}

TEST(Arrivals, KindNamesRoundTrip)
{
    for (ArrivalKind kind :
         {ArrivalKind::Steady, ArrivalKind::Diurnal, ArrivalKind::Mmpp,
          ArrivalKind::FlashCrowd}) {
        EXPECT_EQ(arrivalKindFromName(arrivalKindName(kind)), kind);
    }
    EXPECT_THROW(arrivalKindFromName("tsunami"), ConfigError);
}

TEST(Arrivals, ValidationRejectsNonsense)
{
    ArrivalConfig config;
    config.baseRatePerSec = 0.0;
    EXPECT_THROW(ArrivalProcess{config}, ConfigError);
    config = ArrivalConfig();
    config.diurnalAmplitude = 1.5;
    EXPECT_THROW(ArrivalProcess{config}, ConfigError);
    config = ArrivalConfig();
    config.burstMultiplier = 0.5;
    EXPECT_THROW(ArrivalProcess{config}, ConfigError);
    config = ArrivalConfig();
    config.flashMultiplier = 0.0;
    EXPECT_THROW(ArrivalProcess{config}, ConfigError);
    config = ArrivalConfig();
    config.calmMeanDuration = Seconds{0.0};
    EXPECT_THROW(ArrivalProcess{config}, ConfigError);
}

} // namespace
} // namespace agsim::workload
