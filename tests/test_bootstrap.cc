/**
 * @file
 * Bootstrap confidence-interval tests.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "stats/bootstrap.h"

namespace agsim::stats {
namespace {

TEST(Bootstrap, MeanMatchesSampleMean)
{
    const std::vector<double> samples{1.0, 2.0, 3.0, 4.0, 5.0};
    const auto ci = bootstrapMean(samples);
    EXPECT_DOUBLE_EQ(ci.mean, 3.0);
    EXPECT_LE(ci.lo, ci.mean);
    EXPECT_GE(ci.hi, ci.mean);
    EXPECT_TRUE(ci.contains(3.0));
}

TEST(Bootstrap, SingleSampleDegenerates)
{
    const auto ci = bootstrapMean({7.0});
    EXPECT_DOUBLE_EQ(ci.mean, 7.0);
    EXPECT_DOUBLE_EQ(ci.lo, 7.0);
    EXPECT_DOUBLE_EQ(ci.hi, 7.0);
    EXPECT_DOUBLE_EQ(ci.halfWidth(), 0.0);
}

TEST(Bootstrap, DeterministicBySeed)
{
    const std::vector<double> samples{0.2, 0.9, 1.4, 2.2, 3.1, 0.7};
    const auto a = bootstrapMean(samples, 0.95, 500, 42);
    const auto b = bootstrapMean(samples, 0.95, 500, 42);
    const auto c = bootstrapMean(samples, 0.95, 500, 43);
    EXPECT_DOUBLE_EQ(a.lo, b.lo);
    EXPECT_DOUBLE_EQ(a.hi, b.hi);
    EXPECT_NE(a.lo, c.lo);
}

TEST(Bootstrap, IntervalShrinksWithMoreData)
{
    Rng rng(9);
    std::vector<double> small, large;
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.normal(10.0, 2.0);
        if (i < 50)
            small.push_back(x);
        large.push_back(x);
    }
    const auto narrow = bootstrapMean(large);
    const auto wide = bootstrapMean(small);
    EXPECT_LT(narrow.halfWidth(), wide.halfWidth());
    EXPECT_TRUE(narrow.contains(10.0));
}

TEST(Bootstrap, CoverageNearNominal)
{
    // Over many independent datasets the 95% CI should cover the true
    // mean ~95% of the time (allow a generous band).
    Rng rng(17);
    int covered = 0;
    const int trials = 200;
    for (int trial = 0; trial < trials; ++trial) {
        std::vector<double> samples;
        for (int i = 0; i < 40; ++i)
            samples.push_back(rng.normal(5.0, 1.5));
        const auto ci = bootstrapMean(samples, 0.95, 400,
                                      uint64_t(trial));
        covered += ci.contains(5.0) ? 1 : 0;
    }
    EXPECT_GT(covered, trials * 0.86);
    EXPECT_LE(covered, trials);
}

TEST(Bootstrap, FractionOverFlags)
{
    std::vector<bool> flags(100, false);
    for (int i = 0; i < 25; ++i)
        flags[size_t(i)] = true;
    const auto ci = bootstrapFraction(flags);
    EXPECT_DOUBLE_EQ(ci.mean, 0.25);
    EXPECT_GT(ci.lo, 0.10);
    EXPECT_LT(ci.hi, 0.40);
}

TEST(Bootstrap, Validation)
{
    EXPECT_THROW(bootstrapMean({}), ConfigError);
    EXPECT_THROW(bootstrapMean({1.0, 2.0}, 1.5), ConfigError);
    EXPECT_THROW(bootstrapMean({1.0, 2.0}, 0.95, 2), ConfigError);
}

} // namespace
} // namespace agsim::stats
