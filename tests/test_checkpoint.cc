/**
 * @file
 * ChipCheckpoint tests: a restored chip must continue *bit-identically*
 * to the checkpointed chip (the recovery subsystem's core guarantee),
 * and the AGCK wire format must round-trip exactly and fail loudly on
 * corruption.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chip/chip.h"
#include "chip/chip_checkpoint.h"
#include "common/error.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "pdn/vrm.h"
#include "recovery/checkpoint_codec.h"

namespace agsim::recovery {
namespace {

using namespace agsim::units;

constexpr Seconds kDt{1e-3};

chip::ChipConfig
testConfig()
{
    chip::ChipConfig config;
    config.railIndex = 0;
    config.seed = 0xC4EC4EC4ull;
    config.mode = chip::GuardbandMode::AdaptiveUndervolt;
    return config;
}

/** A chip with a few active cores and some history behind it. */
std::unique_ptr<chip::Chip>
makeBusyChip(pdn::Vrm &vrm, int64_t warmupTicks)
{
    auto c = std::make_unique<chip::Chip>(testConfig(), &vrm);
    for (size_t core = 0; core < 5; ++core)
        c->setLoad(core, chip::CoreLoad::running(0.9, 13.0_mV, 24.0_mV));
    for (int64_t t = 0; t < warmupTicks; ++t)
        c->step(kDt);
    return c;
}

/** Every externally visible per-step observable, compared exactly. */
void
expectChipsBitIdentical(const chip::Chip &a, const chip::Chip &b)
{
    EXPECT_EQ(a.power().value(), b.power().value());
    EXPECT_EQ(a.railCurrent().value(), b.railCurrent().value());
    EXPECT_EQ(a.setpoint().value(), b.setpoint().value());
    EXPECT_EQ(a.simTime().value(), b.simTime().value());
    EXPECT_EQ(a.sinceFirmware().value(), b.sinceFirmware().value());
    EXPECT_EQ(a.lastWorstMargin().value(), b.lastWorstMargin().value());
    EXPECT_EQ(a.temperature().value(), b.temperature().value());
    for (size_t core = 0; core < a.coreCount(); ++core) {
        EXPECT_EQ(a.coreVoltage(core).value(), b.coreVoltage(core).value())
            << "core " << core;
        EXPECT_EQ(a.coreFrequency(core).value(),
                  b.coreFrequency(core).value())
            << "core " << core;
    }
}

TEST(ChipCheckpoint, RestoreResumesBitIdentically)
{
    pdn::Vrm vrmA(1);
    pdn::Vrm vrmB(1);
    auto a = makeBusyChip(vrmA, 700);

    const chip::ChipCheckpoint checkpoint = a->checkpoint();
    const size_t windowsAtCheckpoint = a->telemetry().windows().size();

    // B has the same construction parameters but a *different* history:
    // other loads, another mode, its own step count. Restore must wipe
    // all of it.
    auto b = makeBusyChip(vrmB, 123);
    b->setMode(chip::GuardbandMode::StaticGuardband);
    b->setLoad(7, chip::CoreLoad::running(0.4, 13.0_mV, 24.0_mV));
    for (int64_t t = 0; t < 50; ++t)
        b->step(kDt);

    b->restoreCheckpoint(checkpoint);
    expectChipsBitIdentical(*a, *b);
    EXPECT_TRUE(b->telemetry().windows().empty());

    for (int64_t t = 0; t < 600; ++t) {
        a->step(kDt);
        b->step(kDt);
        expectChipsBitIdentical(*a, *b);
        if (HasFailure())
            FAIL() << "diverged at tick " << t;
    }

    // B's windows are A's post-checkpoint windows, bit for bit.
    const auto &wa = a->telemetry().windows();
    const auto &wb = b->telemetry().windows();
    ASSERT_EQ(wb.size(), wa.size() - windowsAtCheckpoint);
    for (size_t i = 0; i < wb.size(); ++i) {
        EXPECT_EQ(wb[i].worstMargin.value(),
                  wa[windowsAtCheckpoint + i].worstMargin.value());
        EXPECT_EQ(wb[i].meanChipPower.value(),
                  wa[windowsAtCheckpoint + i].meanChipPower.value());
    }
}

TEST(ChipCheckpoint, RestoreResumesFaultInjectorClock)
{
    fault::FaultPlan plan;
    plan.droopStorm(Seconds{0.9}, Seconds{0.3}, 4.0, 1.0);

    pdn::Vrm vrmA(1);
    pdn::Vrm vrmB(1);
    auto a = makeBusyChip(vrmA, 0);
    auto b = makeBusyChip(vrmB, 0);
    fault::FaultInjector injectorA(plan, a->coreCount());
    fault::FaultInjector injectorB(plan, b->coreCount());
    a->attachFaultInjector(&injectorA);
    b->attachFaultInjector(&injectorB);

    // Checkpoint mid-run, before the storm window.
    for (int64_t t = 0; t < 500; ++t)
        a->step(kDt);
    const chip::ChipCheckpoint checkpoint = a->checkpoint();
    EXPECT_TRUE(checkpoint.hadInjector);
    EXPECT_NEAR(checkpoint.faultClock.value(), 0.5, 1e-12);

    // B's injector sits at t = 0; restore must jump it to 0.5 s so the
    // storm fires at the same absolute position on both timelines.
    b->restoreCheckpoint(checkpoint);
    for (int64_t t = 0; t < 900; ++t) {
        a->step(kDt);
        b->step(kDt);
    }
    expectChipsBitIdentical(*a, *b);
    EXPECT_EQ(injectorA.now().value(), injectorB.now().value());
}

TEST(ChipCheckpoint, RestoreBumpsStateEpoch)
{
    pdn::Vrm vrm(1);
    auto c = makeBusyChip(vrm, 100);
    const chip::ChipCheckpoint checkpoint = c->checkpoint();
    const uint64_t epochBefore = c->stateEpoch();
    c->restoreCheckpoint(checkpoint);
    EXPECT_GT(c->stateEpoch(), epochBefore);
}

TEST(ChipCheckpoint, RestoreRejectsIdentityMismatch)
{
    pdn::Vrm vrm(1);
    auto c = makeBusyChip(vrm, 50);

    chip::ChipCheckpoint wrongSeed = c->checkpoint();
    wrongSeed.seed ^= 1;
    EXPECT_THROW(c->restoreCheckpoint(wrongSeed), ConfigError);

    chip::ChipCheckpoint wrongCores = c->checkpoint();
    wrongCores.coreCount += 1;
    EXPECT_THROW(c->restoreCheckpoint(wrongCores), ConfigError);
}

TEST(CheckpointCodec, EncodeDecodeRoundTripsExactly)
{
    pdn::Vrm vrm(1);
    auto c = makeBusyChip(vrm, 333);
    const chip::ChipCheckpoint original = c->checkpoint();

    const std::vector<uint8_t> bytes = encodeChipCheckpoint(original);
    const chip::ChipCheckpoint decoded = decodeChipCheckpoint(bytes);
    // Bit-exactness of every field is implied by byte-exactness of the
    // re-encoding (the codec writes raw IEEE-754 bit patterns).
    EXPECT_EQ(encodeChipCheckpoint(decoded), bytes);

    // And the decoded checkpoint actually restores.
    pdn::Vrm vrmB(1);
    auto b = makeBusyChip(vrmB, 10);
    b->restoreCheckpoint(decoded);
    expectChipsBitIdentical(*c, *b);
}

TEST(CheckpointCodec, RejectsCorruption)
{
    pdn::Vrm vrm(1);
    auto c = makeBusyChip(vrm, 40);
    const std::vector<uint8_t> bytes =
        encodeChipCheckpoint(c->checkpoint());

    std::vector<uint8_t> badMagic = bytes;
    badMagic[0] ^= 0xFF;
    EXPECT_THROW(decodeChipCheckpoint(badMagic), ConfigError);

    std::vector<uint8_t> badVersion = bytes;
    badVersion[4] += 1;
    EXPECT_THROW(decodeChipCheckpoint(badVersion), ConfigError);

    std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 9);
    EXPECT_THROW(decodeChipCheckpoint(truncated), ConfigError);

    std::vector<uint8_t> trailing = bytes;
    trailing.push_back(0);
    EXPECT_THROW(decodeChipCheckpoint(trailing), ConfigError);

    EXPECT_THROW(decodeChipCheckpoint({}), ConfigError);
}

} // namespace
} // namespace agsim::recovery
