/**
 * @file
 * Chip integration tests: modes, calibration anchors, undervolt
 * convergence, overclock range, gating, decomposition.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "chip/chip.h"
#include "common/error.h"
#include "common/units.h"
#include "pdn/vrm.h"
#include "workload/library.h"

namespace agsim::chip {
namespace {

using namespace agsim::units;

class ChipTest : public ::testing::Test
{
  protected:
    ChipTest() : vrm_(1), chip_(ChipConfig(), &vrm_) {}

    void
    activateCores(size_t count, double intensity = 1.0)
    {
        for (size_t i = 0; i < count; ++i) {
            chip_.setLoad(i, CoreLoad::running(intensity, 13.0_mV,
                                               24.0_mV));
        }
    }

    pdn::Vrm vrm_;
    Chip chip_;
};

TEST_F(ChipTest, StaticModeHoldsTargetFrequencyAndSetpoint)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    activateCores(4);
    chip_.settle(Seconds{0.3});
    EXPECT_NEAR(chip_.setpoint(), chip_.staticSetpoint(), 1e-9);
    for (size_t i = 0; i < chip_.coreCount(); ++i)
        EXPECT_NEAR(chip_.coreFrequency(i), Hertz{4.2e9}, Hertz{1.0});
    EXPECT_NEAR(chip_.undervoltAmount(), Volts{0.0}, Volts{1e-9});
}

TEST_F(ChipTest, IdleChipPowerIsReasonable)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    chip_.settle(Seconds{0.3});
    // All-idle, all-on chip: tens of watts, well below busy power.
    EXPECT_GT(chip_.power(), Watts{30.0});
    EXPECT_LT(chip_.power(), Watts{70.0});
}

TEST_F(ChipTest, PowerEnvelopeMatchesFig3a)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    activateCores(1, 1.03);
    chip_.settle(Seconds{0.4});
    const Watts oneCore = chip_.power();
    EXPECT_GT(oneCore, Watts{50.0});
    EXPECT_LT(oneCore, Watts{75.0});

    activateCores(8, 1.03);
    chip_.settle(Seconds{0.4});
    const Watts eightCores = chip_.power();
    EXPECT_GT(eightCores, Watts{110.0});
    EXPECT_LT(eightCores, Watts{150.0});
    EXPECT_GT(eightCores, oneCore + Watts{50.0});
}

TEST_F(ChipTest, UndervoltConvergesAndSavesPower)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    activateCores(1, 1.03);
    chip_.settle(Seconds{1.0});
    const Watts staticPower = chip_.power();

    chip_.setMode(GuardbandMode::AdaptiveUndervolt);
    chip_.settle(Seconds{1.5});
    const Watts adaptivePower = chip_.power();

    // Paper Fig. 3a: ~13% saving with one active core.
    const double saving = 1.0 - adaptivePower / staticPower;
    EXPECT_GT(saving, 0.10);
    EXPECT_LT(saving, 0.18);
    // Undervolt is tens of millivolts.
    EXPECT_GT(toMilliVolts(chip_.undervoltAmount()), 40.0);
    EXPECT_LE(toMilliVolts(chip_.undervoltAmount()), 81.0);
    // Frequency stays pinned at the target.
    EXPECT_NEAR(chip_.coreFrequency(0), Hertz{4.2e9}, Hertz{0.002e9});
}

TEST_F(ChipTest, UndervoltShrinksWithMoreActiveCores)
{
    chip_.setMode(GuardbandMode::AdaptiveUndervolt);
    activateCores(1, 1.03);
    chip_.settle(Seconds{1.5});
    const Volts oneCore = chip_.undervoltAmount();

    activateCores(8, 1.03);
    chip_.settle(Seconds{1.5});
    const Volts eightCores = chip_.undervoltAmount();
    EXPECT_LT(eightCores, oneCore);
}

TEST_F(ChipTest, OverclockBoostMatchesFig4a)
{
    chip_.setMode(GuardbandMode::AdaptiveOverclock);
    activateCores(1, 1.02);
    chip_.settle(Seconds{0.5});
    const double boostOne = chip_.meanActiveFrequency() / 4.2_GHz - 1.0;
    EXPECT_GT(boostOne, 0.07);
    EXPECT_LE(boostOne, 0.101);

    activateCores(8, 1.02);
    chip_.settle(Seconds{0.5});
    const double boostEight = chip_.meanActiveFrequency() / 4.2_GHz - 1.0;
    EXPECT_GT(boostEight, 0.015);
    EXPECT_LT(boostEight, boostOne);
}

TEST_F(ChipTest, GatedCoresDrawAlmostNothing)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    chip_.settle(Seconds{0.3});
    const Watts allOn = chip_.power();

    for (size_t i = 0; i < 8; ++i)
        chip_.setLoad(i, CoreLoad::powerGated());
    chip_.settle(Seconds{0.3});
    const Watts allGated = chip_.power();
    EXPECT_LT(allGated, allOn * 0.5);
    EXPECT_DOUBLE_EQ(chip_.coreFrequency(0), Hertz{0.0});
}

TEST_F(ChipTest, GatedCoreCannotBeActive)
{
    CoreLoad bad;
    bad.gated = true;
    bad.active = true;
    EXPECT_THROW(chip_.setLoad(0, bad), ConfigError);
}

TEST_F(ChipTest, DecompositionComponentsAreSane)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    activateCores(8, 1.0);
    chip_.settle(Seconds{0.5});
    const auto &d = chip_.decomposition(0);
    EXPECT_GT(d.loadline, Volts{0.0});
    EXPECT_GT(d.irGlobal, Volts{0.0});
    EXPECT_GT(d.irLocal, Volts{0.0});
    EXPECT_GT(d.typicalDidt, Volts{0.0});
    EXPECT_GT(d.worstDidt, Volts{0.0});
    EXPECT_NEAR(d.total(),
                d.loadline + d.irDrop() + d.typicalDidt + d.worstDidt,
                1e-12);
    // Passive dominates at full load (Sec. 4.3 conclusion).
    EXPECT_GT(d.passive(), d.typicalDidt + d.worstDidt);
    // Total drop stays inside the static guardband's ballpark.
    EXPECT_LT(d.total(), Volts{0.155});
}

TEST_F(ChipTest, ActiveCoreSeesDeeperLocalDropThanIdle)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    activateCores(1, 1.1); // core 0 busy
    chip_.settle(Seconds{0.3});
    EXPECT_LT(chip_.coreVoltage(0), chip_.coreVoltage(7));
}

TEST_F(ChipTest, TelemetryFlowsWindows)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    activateCores(2);
    chip_.settle(Seconds{0.2});
    EXPECT_TRUE(chip_.telemetry().hasWindows());
    const auto &window = chip_.telemetry().latest();
    EXPECT_EQ(window.sampleCpm.size(), 8u);
    // Sticky never exceeds sample for the same window.
    for (size_t i = 0; i < 8; ++i)
        EXPECT_LE(window.stickyCpm[i], window.sampleCpm[i]);
}

TEST_F(ChipTest, DisabledModeAllowsForcedSetpoint)
{
    chip_.setMode(GuardbandMode::Disabled);
    chip_.forceSetpoint(Volts{1.05});
    chip_.settle(Seconds{0.1});
    EXPECT_NEAR(chip_.setpoint(), Volts{1.05}, Volts{7e-3});
    // Frequency stays at target even at low voltage (characterization).
    EXPECT_NEAR(chip_.coreFrequency(0), Hertz{4.2e9}, Hertz{1.0});
}

TEST_F(ChipTest, ForcedSetpointRejectedInOtherModes)
{
    chip_.setMode(GuardbandMode::AdaptiveUndervolt);
    EXPECT_THROW(chip_.forceSetpoint(Volts{1.0}), ConfigError);
}

TEST_F(ChipTest, TargetFrequencyChangesStaticSetpoint)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    const Volts at42 = chip_.staticSetpoint();
    chip_.setTargetFrequency(3.5_GHz);
    EXPECT_LT(chip_.staticSetpoint(), at42);
    EXPECT_THROW(chip_.setTargetFrequency(5.0_GHz), ConfigError);
}

TEST_F(ChipTest, TemperatureRisesWithLoad)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    chip_.settle(Seconds{30.0}, Seconds{1e-2});
    const Celsius idle = chip_.temperature();
    activateCores(8, 1.1);
    chip_.settle(Seconds{60.0}, Seconds{1e-2});
    EXPECT_GT(chip_.temperature(), idle + Celsius{4.0});
    EXPECT_LT(chip_.temperature(), Celsius{45.0});
}

TEST_F(ChipTest, ActiveCountTracksLoads)
{
    EXPECT_EQ(chip_.activeCoreCount(), 0u);
    activateCores(3);
    EXPECT_EQ(chip_.activeCoreCount(), 3u);
    chip_.clearLoads();
    EXPECT_EQ(chip_.activeCoreCount(), 0u);
}

TEST(ChipConstruction, Validation)
{
    pdn::Vrm vrm(1);
    ChipConfig config;
    config.railIndex = 3;
    EXPECT_THROW(Chip(config, &vrm), ConfigError);
    EXPECT_THROW(Chip(ChipConfig(), nullptr), ConfigError);
    config = ChipConfig();
    config.coreCount = 0;
    EXPECT_THROW(Chip(config, &vrm), ConfigError);
    config = ChipConfig();
    config.solverTolerance = -Volts{1e-6};
    EXPECT_THROW(Chip(config, &vrm), ConfigError);
}

/**
 * The V<->P fixed-point early exit (solverTolerance) must reproduce the
 * fixed-iteration solver within its own tolerance: same seed, settle,
 * then compare the analog state across load configurations.
 */
class SolverParityTest
    : public ::testing::TestWithParam<const char *>
{
  protected:
    /** Build a chip with the given tolerance, apply the scenario
     *  named by GetParam(), settle, and return it. */
    struct Rig
    {
        explicit Rig(Volts tolerance, const std::string &scenario)
            : vrm(1)
        {
            ChipConfig config;
            config.solverTolerance = tolerance;
            chip = std::make_unique<Chip>(config, &vrm);
            chip->setMode(GuardbandMode::AdaptiveUndervolt);
            if (scenario == "loaded") {
                for (size_t i = 0; i < chip->coreCount(); ++i)
                    chip->setLoad(i, CoreLoad::running(1.0, 13.0_mV,
                                                       24.0_mV));
            } else if (scenario == "gated") {
                for (size_t i = 0; i < 4; ++i)
                    chip->setLoad(i, CoreLoad::running(1.0, 13.0_mV,
                                                       24.0_mV));
                for (size_t i = 4; i < chip->coreCount(); ++i)
                    chip->setLoad(i, CoreLoad::powerGated());
            } // else "idle": all cores powered-on idle
            chip->settle(Seconds{1.0});
        }

        pdn::Vrm vrm;
        std::unique_ptr<Chip> chip;
    };
};

TEST_P(SolverParityTest, EarlyExitMatchesFixedIteration)
{
    Rig exact(Volts{0.0}, GetParam()); // tolerance 0: full iteration count
    Rig fast(Volts{1e-6}, GetParam()); // default early exit

    // A 1 uV rail tolerance bounds the power error to well under the
    // milliwatt scale; frequency and setpoint follow the same rail.
    EXPECT_NEAR(fast.chip->power(), exact.chip->power(), 1e-2);
    EXPECT_NEAR(fast.chip->setpoint(), exact.chip->setpoint(), 1e-5);
    EXPECT_NEAR(fast.chip->undervoltAmount(),
                exact.chip->undervoltAmount(), 1e-5);
    for (size_t i = 0; i < exact.chip->coreCount(); ++i) {
        EXPECT_NEAR(fast.chip->coreFrequency(i),
                    exact.chip->coreFrequency(i), 1e4)
            << "core " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(LoadConfigs, SolverParityTest,
                         ::testing::Values("idle", "loaded", "gated"));

TEST_F(ChipTest, FirmwareCadenceCarriesRemainderAcrossIntervals)
{
    chip_.setMode(GuardbandMode::AdaptiveUndervolt);
    activateCores(4);

    // dt = 0.7 ms does not divide the 32 ms interval: the 46th step
    // lands at 32.2 ms, so 0.2 ms must carry into the next interval
    // (the old reset-to-zero behavior would leave 0 and stretch the
    // cadence to 46 steps forever).
    const Seconds dt = Seconds{0.7e-3};
    for (int i = 0; i < 45; ++i)
        chip_.step(dt);
    EXPECT_NEAR(chip_.sinceFirmware(), 45 * dt, 1e-9);
    chip_.step(dt);
    EXPECT_NEAR(chip_.sinceFirmware(), 46 * dt - Seconds{32e-3}, 1e-9);

    // Over a long run the accumulator stays inside [0, interval).
    for (int i = 0; i < 500; ++i) {
        chip_.step(dt);
        EXPECT_GE(chip_.sinceFirmware(), Seconds{0.0});
        EXPECT_LT(chip_.sinceFirmware(), Seconds{32e-3});
    }
}

} // namespace
} // namespace agsim::chip
