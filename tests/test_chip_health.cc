/**
 * @file
 * ChipHealthView: the typed safety-telemetry snapshot the scheduler
 * layer consumes, plus the public Chip counter/CSV parity it rides on.
 */

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chip/chip.h"
#include "chip/chip_health.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "pdn/vrm.h"
#include "sensors/telemetry_csv.h"

using namespace agsim;
using namespace agsim::chip;
using namespace agsim::units;

namespace {

constexpr Seconds kDt = Seconds{1e-3};

/** One chip with loads applied and (optionally) a fault plan attached. */
struct HealthRig
{
    explicit HealthRig(GuardbandMode mode, const fault::FaultPlan &plan =
                                               fault::FaultPlan(),
                       int maxRearms = 2)
        : vrm(1)
    {
        ChipConfig config;
        // Let an injected optimistic lie express fully instead of being
        // clipped at the default 80 mV walk limit.
        config.undervolt.maxUndervolt = Volts{0.120};
        config.safety.maxRearms = maxRearms;
        chip = std::make_unique<Chip>(config, &vrm);
        chip->setMode(mode);
        for (size_t i = 0; i < chip->coreCount(); ++i)
            chip->setLoad(i, CoreLoad::running(1.0, 13.0_mV, 24.0_mV));
        if (!plan.faults.empty()) {
            injector = std::make_unique<fault::FaultInjector>(
                plan, chip->coreCount());
            chip->attachFaultInjector(injector.get());
        }
    }

    /** Step for a duration (dt-quantized). */
    void
    run(Seconds duration)
    {
        const int steps = int(duration / kDt + 0.5);
        for (int i = 0; i < steps; ++i)
            chip->step(kDt);
    }

    pdn::Vrm vrm;
    std::unique_ptr<Chip> chip;
    std::unique_ptr<fault::FaultInjector> injector;
};

/** The standard demotion trigger: a permanent optimistic CPM lie. */
fault::FaultPlan
lyingCpms(Seconds start = Seconds{0.1}, Seconds duration = Seconds{0.0})
{
    fault::FaultPlan plan;
    plan.cpmOptimisticBias(start, duration, Volts{40e-3});
    return plan;
}

} // namespace

TEST(ChipHealthView, HealthyAdaptiveChip)
{
    HealthRig rig(GuardbandMode::AdaptiveUndervolt);
    rig.run(Seconds{0.5});

    const ChipHealthView view = rig.chip->healthView();
    EXPECT_EQ(view.state, SafetyState::Monitoring);
    EXPECT_EQ(view.commandedMode, GuardbandMode::AdaptiveUndervolt);
    EXPECT_EQ(view.effectiveMode, GuardbandMode::AdaptiveUndervolt);
    EXPECT_TRUE(view.healthy());
    EXPECT_TRUE(view.adaptiveCommanded());
    EXPECT_FALSE(view.demoted());
    EXPECT_EQ(view.demotions, 0);
    EXPECT_EQ(view.rearms, 0);
    EXPECT_NEAR(view.rearmBudget, Seconds{0.0}, Seconds{1e-12});

    const std::string text = describeChipHealth(view);
    EXPECT_NE(text.find("monitoring"), std::string::npos);
    EXPECT_NE(text.find("undervolt"), std::string::npos);
}

TEST(ChipHealthView, StaticChipIsHealthyButNotAdaptive)
{
    HealthRig rig(GuardbandMode::StaticGuardband);
    rig.run(Seconds{0.2});

    const ChipHealthView view = rig.chip->healthView();
    EXPECT_TRUE(view.healthy());
    EXPECT_FALSE(view.adaptiveCommanded());
    EXPECT_FALSE(view.demoted());
}

TEST(ChipHealthView, DemotionReflectedWithRearmBudget)
{
    HealthRig rig(GuardbandMode::AdaptiveUndervolt, lyingCpms());
    rig.run(Seconds{1.0});
    ASSERT_TRUE(rig.chip->safetyDemoted());

    const ChipHealthView view = rig.chip->healthView();
    EXPECT_EQ(view.state, SafetyState::Demoted);
    EXPECT_TRUE(view.demoted());
    EXPECT_FALSE(view.healthy());
    // The operator's command survives the demotion; the effective mode
    // is the safety fallback.
    EXPECT_EQ(view.commandedMode, GuardbandMode::AdaptiveUndervolt);
    EXPECT_EQ(view.effectiveMode, GuardbandMode::StaticGuardband);
    EXPECT_TRUE(view.adaptiveCommanded());
    EXPECT_EQ(view.demotions, 1);
    EXPECT_GE(view.emergencies, 8); // the demotion budget
    // First demotion: the clean interval required is rearmInterval (1 s)
    // and some of it has already elapsed in static mode.
    EXPECT_GT(view.rearmBudget, Seconds{0.0});
    EXPECT_LE(view.rearmBudget, Seconds{1.0});

    EXPECT_NE(describeChipHealth(view).find("rearm in"),
              std::string::npos);
}

TEST(ChipHealthView, RearmBudgetCountsDownAndRearms)
{
    HealthRig rig(GuardbandMode::AdaptiveUndervolt,
                  lyingCpms(Seconds{0.1}, Seconds{0.2}));
    rig.run(Seconds{0.4}); // fault expires at 0.3; demotion is earlier
    ASSERT_TRUE(rig.chip->safetyDemoted());

    const Seconds before = rig.chip->healthView().rearmBudget;
    rig.run(Seconds{0.2});
    const Seconds after = rig.chip->healthView().rearmBudget;
    EXPECT_NEAR(before - after, Seconds{0.2}, Seconds{0.02});

    // Step until the monitor re-arms (1 s clean required).
    rig.run(Seconds{1.0});
    const ChipHealthView view = rig.chip->healthView();
    EXPECT_EQ(view.state, SafetyState::Monitoring);
    EXPECT_EQ(view.rearms, 1);
    EXPECT_EQ(view.effectiveMode, GuardbandMode::AdaptiveUndervolt);
    EXPECT_TRUE(view.healthy());
    EXPECT_EQ(rig.chip->totalRearms(), 1);
}

TEST(ChipHealthView, LatchedChipReportsNegativeBudget)
{
    HealthRig rig(GuardbandMode::AdaptiveUndervolt, lyingCpms(),
                  /*maxRearms=*/0);
    rig.run(Seconds{1.0});

    const ChipHealthView view = rig.chip->healthView();
    EXPECT_EQ(view.state, SafetyState::Latched);
    EXPECT_TRUE(view.demoted());
    EXPECT_LT(view.rearmBudget, Seconds{0.0});
    EXPECT_NE(describeChipHealth(view).find("latched"),
              std::string::npos);
}

TEST(ChipHealthView, LatchedDroopDepthTracksStormsAndResets)
{
    fault::FaultPlan storm;
    storm.droopStorm(Seconds{0.1}, Seconds{0.0}, 10.0, 2.0);
    HealthRig stormy(GuardbandMode::StaticGuardband, storm);
    HealthRig calm(GuardbandMode::StaticGuardband);
    stormy.run(Seconds{1.0});
    calm.run(Seconds{1.0});

    // The sticky maximum is monotone and storm-scaled depths dominate
    // the healthy worst case.
    EXPECT_GT(stormy.chip->latchedDroopDepth(), Volts{0.0});
    EXPECT_GT(stormy.chip->latchedDroopDepth(),
              calm.chip->latchedDroopDepth());
    EXPECT_GT(stormy.chip->healthView().latchedDroopDepth, Volts{0.0});

    // An operator mode command acknowledges the reading.
    stormy.chip->setMode(GuardbandMode::StaticGuardband);
    EXPECT_NEAR(stormy.chip->latchedDroopDepth(), Volts{0.0},
                Volts{1e-12});
}

namespace {

/** Sum an integer CSV column over all data rows. */
int64_t
sumCsvColumn(const std::string &csv, const std::string &column)
{
    std::istringstream in(csv);
    std::string header;
    EXPECT_TRUE(std::getline(in, header) && !header.empty());

    const auto split = [](const std::string &line) {
        std::vector<std::string> cells;
        std::istringstream ls(line);
        std::string cell;
        while (std::getline(ls, cell, ','))
            cells.push_back(cell);
        return cells;
    };

    const std::vector<std::string> names = split(header);
    size_t index = names.size();
    for (size_t i = 0; i < names.size(); ++i) {
        if (names[i] == column)
            index = i;
    }
    EXPECT_LT(index, names.size()) << "column not found: " << column;

    int64_t sum = 0;
    std::string line;
    while (std::getline(in, line)) {
        const auto cells = split(line);
        EXPECT_EQ(cells.size(), names.size());
        sum += std::stoll(cells[index]);
    }
    return sum;
}

} // namespace

/**
 * Satellite fix check: the safety counters exported on the public Chip
 * telemetry/CSV path agree with the SafetyMonitor's totals. Run an
 * exact multiple of the 32 ms telemetry window so every event lands in
 * a closed (exported) window.
 */
TEST(ChipHealthView, CsvSafetyCountersMatchChipTotals)
{
    HealthRig rig(GuardbandMode::AdaptiveUndervolt,
                  lyingCpms(Seconds{0.1}, Seconds{0.2}));
    rig.run(Seconds{2.368}); // 74 windows: demote, re-arm, stay clean

    ASSERT_EQ(rig.chip->totalDemotions(), 1);
    ASSERT_EQ(rig.chip->totalRearms(), 1);
    ASSERT_GE(rig.chip->totalEmergencies(), 8);

    const std::string csv = sensors::telemetryCsvString(rig.chip->telemetry());
    // The CSV column counts per-core ground-truth violations; the
    // monitor counts emergency *steps* (several cores can trip in one),
    // so the export can only be >= the monitor's total.
    EXPECT_GE(sumCsvColumn(csv, "emergencies"),
              rig.chip->totalEmergencies());
    EXPECT_EQ(sumCsvColumn(csv, "demotions"), rig.chip->totalDemotions());
    EXPECT_EQ(sumCsvColumn(csv, "rearms"), rig.chip->totalRearms());

    // Counter facade parity with the underlying monitor.
    EXPECT_EQ(rig.chip->totalEmergencies(),
              rig.chip->safetyMonitor().totalEmergencies());
    EXPECT_EQ(rig.chip->totalDemotions(),
              rig.chip->safetyMonitor().demotionCount());
    EXPECT_EQ(rig.chip->totalRearms(),
              rig.chip->safetyMonitor().rearmCount());
}
