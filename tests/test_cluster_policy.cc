/**
 * @file
 * Cluster-policy tests (the Sec. 5.1.1 two-level extension).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/cluster_policy.h"
#include "workload/library.h"

namespace agsim::core {
namespace {

ClusterSpec
smallSpec()
{
    ClusterSpec spec;
    spec.serverCount = 3;
    spec.poweredCoreBudgetPerServer = 8;
    spec.platformPowerPerServer = Watts{120.0};
    return spec;
}

TEST(ClusterPolicy, ConsolidationPowersFewestServers)
{
    const auto spec = smallSpec();
    const auto &profile = workload::byName("raytrace");
    const auto eval = evaluateClusterStrategy(
        spec, profile, 8,
        ClusterStrategy::ConsolidateServersBorrowSockets);
    EXPECT_EQ(eval.activeServers, 1u);
    EXPECT_NEAR(eval.platformPower, Watts{120.0}, Watts{1e-9});
    EXPECT_GT(eval.chipPower, Watts{0.0});
    EXPECT_NEAR(eval.totalPower, eval.chipPower + eval.platformPower,
                1e-9);
}

TEST(ClusterPolicy, SpreadingPowersAllServers)
{
    const auto spec = smallSpec();
    const auto &profile = workload::byName("raytrace");
    const auto eval = evaluateClusterStrategy(
        spec, profile, 6, ClusterStrategy::SpreadServersBorrowSockets);
    EXPECT_EQ(eval.activeServers, 3u);
    EXPECT_NEAR(eval.platformPower, Watts{360.0}, Watts{1e-9});
}

TEST(ClusterPolicy, PaperRecommendationHoldsAtClusterLevel)
{
    // Sec. 5.1.1: platform power dominates — consolidate onto the fewest
    // servers first, then borrow within each. Spreading across servers
    // must lose once platform power is counted.
    const auto spec = smallSpec();
    const auto &profile = workload::byName("lu_cb");
    const auto all = evaluateAllClusterStrategies(spec, profile, 8);
    ASSERT_EQ(all.size(), 3u);
    const auto &consCons = all[0];
    const auto &consBorrow = all[1];
    const auto &spreadBorrow = all[2];

    // Within the consolidated-server pair, borrowing sockets wins.
    EXPECT_LT(consBorrow.totalPower, consCons.totalPower);
    // Spreading servers loses to both consolidated strategies.
    EXPECT_GT(spreadBorrow.totalPower, consBorrow.totalPower);
    EXPECT_GT(spreadBorrow.totalPower, consCons.totalPower);
}

TEST(ClusterPolicy, OverflowSpillsToNextServer)
{
    const auto spec = smallSpec();
    const auto &profile = workload::byName("gcc");
    const auto eval = evaluateClusterStrategy(
        spec, profile, 12,
        ClusterStrategy::ConsolidateServersBorrowSockets);
    EXPECT_EQ(eval.activeServers, 2u);
}

TEST(ClusterPolicy, RejectsOverCapacity)
{
    const auto spec = smallSpec();
    const auto &profile = workload::byName("gcc");
    EXPECT_THROW(evaluateClusterStrategy(
                     spec, profile, 25,
                     ClusterStrategy::SpreadServersBorrowSockets),
                 ConfigError);
    EXPECT_THROW(evaluateClusterStrategy(
                     spec, profile, 0,
                     ClusterStrategy::SpreadServersBorrowSockets),
                 ConfigError);
}

namespace {

chip::ChipHealthView
healthyServerView()
{
    chip::ChipHealthView view;
    view.state = chip::SafetyState::Monitoring;
    view.commandedMode = chip::GuardbandMode::AdaptiveUndervolt;
    view.effectiveMode = chip::GuardbandMode::AdaptiveUndervolt;
    return view;
}

chip::ChipHealthView
demotedServerView()
{
    chip::ChipHealthView view = healthyServerView();
    view.state = chip::SafetyState::Demoted;
    view.effectiveMode = chip::GuardbandMode::StaticGuardband;
    view.demotions = 1;
    return view;
}

/** smallSpec with per-server telemetry: server 0 has a demoted socket. */
ClusterSpec
sickFirstServerSpec()
{
    ClusterSpec spec = smallSpec();
    spec.healthAware = true;
    spec.serverHealth = {
        {demotedServerView(), healthyServerView()},
        {healthyServerView(), healthyServerView()},
        {healthyServerView(), healthyServerView()},
    };
    return spec;
}

} // namespace

TEST(ClusterPolicy, HealthBlindByDefault)
{
    ClusterSpec spec = sickFirstServerSpec();
    spec.healthAware = false;
    EXPECT_TRUE(serverHealthy(spec, 0));
    // Consolidation still fills server 0 first.
    const auto loads = serverLoads(
        spec, 8, ClusterStrategy::ConsolidateServersBorrowSockets);
    EXPECT_EQ(loads, (std::vector<size_t>{8, 0, 0}));
}

TEST(ClusterPolicy, HealthAwareConsolidationSkipsDemotedServer)
{
    const ClusterSpec spec = sickFirstServerSpec();
    EXPECT_FALSE(serverHealthy(spec, 0));
    EXPECT_TRUE(serverHealthy(spec, 1));

    const auto loads = serverLoads(
        spec, 8, ClusterStrategy::ConsolidateServersBorrowSockets);
    EXPECT_EQ(loads, (std::vector<size_t>{0, 8, 0}));

    // The demoted server only powers on once the healthy pool is full.
    const auto spill = serverLoads(
        spec, 20, ClusterStrategy::ConsolidateServersBorrowSockets);
    EXPECT_EQ(spill, (std::vector<size_t>{4, 8, 8}));
}

TEST(ClusterPolicy, HealthAwareSpreadRoundRobinsHealthyPoolThenSpills)
{
    const ClusterSpec spec = sickFirstServerSpec();
    const auto loads = serverLoads(
        spec, 6, ClusterStrategy::SpreadServersBorrowSockets);
    EXPECT_EQ(loads, (std::vector<size_t>{0, 3, 3}));

    const auto spill = serverLoads(
        spec, 18, ClusterStrategy::SpreadServersBorrowSockets);
    EXPECT_EQ(spill, (std::vector<size_t>{2, 8, 8}));
}

TEST(ClusterPolicy, AllServersUnhealthyFallsBackToWholeCluster)
{
    ClusterSpec spec = sickFirstServerSpec();
    spec.serverHealth = {
        {demotedServerView()},
        {demotedServerView()},
        {demotedServerView()},
    };
    const auto loads = serverLoads(
        spec, 6, ClusterStrategy::SpreadServersBorrowSockets);
    EXPECT_EQ(loads, (std::vector<size_t>{2, 2, 2}));
}

TEST(ClusterPolicy, DroopCeilingDistrustsServer)
{
    ClusterSpec spec = smallSpec();
    spec.healthAware = true;
    spec.healthParams.droopDepthCeiling = Volts{60e-3};
    auto stormStruck = healthyServerView();
    stormStruck.latchedDroopDepth = Volts{90e-3};
    spec.serverHealth = {{stormStruck}, {healthyServerView()}};
    EXPECT_FALSE(serverHealthy(spec, 0));
    EXPECT_TRUE(serverHealthy(spec, 1));
    // No telemetry recorded for server 2: assumed healthy.
    EXPECT_TRUE(serverHealthy(spec, 2));
}

TEST(ClusterPolicy, StrategyNames)
{
    EXPECT_STREQ(clusterStrategyName(
                     ClusterStrategy::ConsolidateServersBorrowSockets),
                 "consolidate-servers+borrow-sockets");
}

} // namespace
} // namespace agsim::core
