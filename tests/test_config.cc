/**
 * @file
 * ParamSet tests: typed accessors, defaults, argv parsing, errors.
 */

#include <gtest/gtest.h>

#include "common/config.h"
#include "common/error.h"

namespace agsim {
namespace {

TEST(ParamSet, MissingKeyReturnsFallback)
{
    ParamSet params;
    EXPECT_DOUBLE_EQ(params.getDouble("x", 1.5), 1.5);
    EXPECT_EQ(params.getInt("n", 7), 7);
    EXPECT_TRUE(params.getBool("flag", true));
    EXPECT_EQ(params.getString("s", "dflt"), "dflt");
    EXPECT_FALSE(params.has("x"));
}

TEST(ParamSet, SetAndReadBack)
{
    ParamSet params;
    params.set("gb", "0.150");
    params.set("cores", "8");
    params.set("enable", "true");
    params.set("name", "raytrace");
    EXPECT_TRUE(params.has("gb"));
    EXPECT_DOUBLE_EQ(params.getDouble("gb", 0.0), 0.150);
    EXPECT_EQ(params.getInt("cores", 0), 8);
    EXPECT_TRUE(params.getBool("enable", false));
    EXPECT_EQ(params.getString("name", ""), "raytrace");
}

TEST(ParamSet, OverwriteReplacesValue)
{
    ParamSet params;
    params.set("k", "1");
    params.set("k", "2");
    EXPECT_EQ(params.getInt("k", 0), 2);
}

TEST(ParamSet, BoolAcceptsManySpellings)
{
    ParamSet params;
    for (const char *yes : {"1", "true", "yes", "TRUE", "Yes"}) {
        params.set("b", yes);
        EXPECT_TRUE(params.getBool("b", false)) << yes;
    }
    for (const char *no : {"0", "false", "no", "FALSE", "No"}) {
        params.set("b", no);
        EXPECT_FALSE(params.getBool("b", true)) << no;
    }
}

TEST(ParamSet, MalformedNumbersThrow)
{
    ParamSet params;
    params.set("d", "12abc");
    params.set("i", "1.5");
    params.set("b", "maybe");
    EXPECT_THROW(params.getDouble("d", 0.0), ConfigError);
    EXPECT_THROW(params.getInt("i", 0), ConfigError);
    EXPECT_THROW(params.getBool("b", false), ConfigError);
}

TEST(ParamSet, ParseArgsSplitsKeyValueAndPositional)
{
    ParamSet params;
    const char *argv[] = {"prog", "threads=8", "raytrace", "gb=0.1",
                          "-v"};
    const auto positional = params.parseArgs(5, argv);
    ASSERT_EQ(positional.size(), 2u);
    EXPECT_EQ(positional[0], "raytrace");
    EXPECT_EQ(positional[1], "-v");
    EXPECT_EQ(params.getInt("threads", 0), 8);
    EXPECT_DOUBLE_EQ(params.getDouble("gb", 0.0), 0.1);
}

TEST(ParamSet, KeysAreSorted)
{
    ParamSet params;
    params.set("zeta", "1");
    params.set("alpha", "2");
    const auto keys = params.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "alpha");
    EXPECT_EQ(keys[1], "zeta");
}

} // namespace
} // namespace agsim
