/**
 * @file
 * CPM sensor tests: the 0-11 edge detector, ~21 mV/bit sensitivity
 * (Fig. 6a), calibration semantics, voltage inversion, bank behaviour
 * and per-core variance classes (Fig. 6b).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "power/vf_curve.h"
#include "sensors/cpm.h"
#include "sensors/cpm_bank.h"
#include "stats/accumulator.h"
#include "stats/linear_fit.h"

namespace agsim::sensors {
namespace {

using namespace agsim::units;
using power::VfCurve;

class CpmTest : public ::testing::Test
{
  protected:
    VfCurve curve_;
    CpmParams params_;
};

TEST_F(CpmTest, CalibrationPointReadsCalibrationPosition)
{
    Cpm cpm(&curve_, params_, 1.0, 0.0);
    const Hertz f = 4.2_GHz;
    const Volts v = curve_.vminAt(f) + curve_.params().calibratedMargin;
    EXPECT_EQ(cpm.read(v, f), params_.calibrationPosition);
}

TEST_F(CpmTest, OutputClampsToDetectorRange)
{
    Cpm cpm(&curve_, params_, 1.0, 0.0);
    EXPECT_EQ(cpm.read(Volts{0.5}, 4.2_GHz), 0);
    EXPECT_EQ(cpm.read(Volts{2.0}, 4.2_GHz), params_.positions - 1);
}

TEST_F(CpmTest, MonotoneInVoltage)
{
    Cpm cpm(&curve_, params_, 1.0, 0.0);
    int prev = -1;
    for (Volts v = Volts{0.95}; v <= Volts{1.25}; v += Volts{0.005}) {
        const int value = cpm.read(v, 4.2_GHz);
        EXPECT_GE(value, prev);
        prev = value;
    }
}

TEST_F(CpmTest, HigherFrequencyReadsLower)
{
    // Fig. 6a: at fixed voltage, higher frequency -> tighter margin.
    Cpm cpm(&curve_, params_, 1.0, 0.0);
    const Volts v = Volts{1.15};
    EXPECT_LT(cpm.read(v, 4.2_GHz), cpm.read(v, 3.6_GHz));
}

TEST_F(CpmTest, SensitivityNear21mVPerBitAtPeak)
{
    Cpm cpm(&curve_, params_, 1.0, 0.0);
    EXPECT_NEAR(toMilliVolts(cpm.voltsPerBit(4.2_GHz)), 21.0, 0.01);
    // Lower frequency -> more mV per bit (Fig. 6b trend).
    EXPECT_GT(cpm.voltsPerBit(3.6_GHz), cpm.voltsPerBit(4.2_GHz));
}

TEST_F(CpmTest, LinearFitRecoversSensitivity)
{
    // Reproduce the Fig. 6a methodology: sweep voltage, fit CPM-vs-V,
    // slope inverse should be ~21 mV/bit.
    Cpm cpm(&curve_, params_, 1.0, 0.0);
    stats::LinearFit fit;
    for (Volts v = Volts{1.10}; v <= Volts{1.22}; v += Volts{0.002}) {
        const double raw = cpm.rawPosition(v, 4.2_GHz);
        if (raw > 0.5 && raw < 10.5)
            fit.add(v.value(), raw);
    }
    ASSERT_GT(fit.count(), 10u);
    EXPECT_NEAR(1.0 / fit.slope(), 0.021, 0.001);
}

TEST_F(CpmTest, PositionToVoltageInvertsRead)
{
    Cpm cpm(&curve_, params_, 1.0, 0.0);
    const Hertz f = 4.0_GHz;
    for (Volts v = Volts{1.05}; v <= Volts{1.18}; v += Volts{0.01}) {
        const double raw = cpm.rawPosition(v, f);
        if (raw <= 0.0 || raw >= 11.0)
            continue;
        EXPECT_NEAR(cpm.positionToVoltage(raw, f), v, 1e-9);
    }
}

TEST_F(CpmTest, OffsetShiftsReading)
{
    Cpm centered(&curve_, params_, 1.0, 0.0);
    Cpm offset(&curve_, params_, 1.0, 1.0);
    const Volts v = Volts{1.15};
    EXPECT_EQ(offset.read(v, 4.2_GHz), centered.read(v, 4.2_GHz) + 1);
}

TEST_F(CpmTest, SensitivityScaleChangesSlope)
{
    Cpm nominal(&curve_, params_, 1.0, 0.0);
    Cpm insensitive(&curve_, params_, 1.5, 0.0);
    EXPECT_NEAR(insensitive.voltsPerBit(4.2_GHz),
                1.5 * nominal.voltsPerBit(4.2_GHz), 1e-12);
}

TEST_F(CpmTest, RejectsBadConstruction)
{
    EXPECT_THROW(Cpm(nullptr, params_, 1.0, 0.0), ConfigError);
    EXPECT_THROW(Cpm(&curve_, params_, 0.0, 0.0), ConfigError);
    CpmParams bad = params_;
    bad.positions = 1;
    EXPECT_THROW(Cpm(&curve_, bad, 1.0, 0.0), ConfigError);
    bad = params_;
    bad.calibrationPosition = 12;
    EXPECT_THROW(Cpm(&curve_, bad, 1.0, 0.0), ConfigError);
}

class CpmBankTest : public ::testing::Test
{
  protected:
    VfCurve curve_;
    CpmParams params_;
};

TEST_F(CpmBankTest, FiveCpmsPerCore)
{
    CpmBank bank(&curve_, params_, 0, 42);
    EXPECT_EQ(bank.size(), 5u);
}

TEST_F(CpmBankTest, MinReadIsLowestInstance)
{
    CpmBank bank(&curve_, params_, 1, 42);
    const Volts v = Volts{1.16};
    const Hertz f = 4.2_GHz;
    int lowest = params_.positions;
    for (size_t i = 0; i < bank.size(); ++i)
        lowest = std::min(lowest, bank.read(i, v, f));
    EXPECT_EQ(bank.minRead(v, f), lowest);
}

TEST_F(CpmBankTest, PersonalityFrozenBySeed)
{
    CpmBank a(&curve_, params_, 3, 42);
    CpmBank b(&curve_, params_, 3, 42);
    CpmBank c(&curve_, params_, 3, 43);
    const Volts v = Volts{1.15};
    const Hertz f = 4.2_GHz;
    EXPECT_DOUBLE_EQ(a.meanRaw(v, f), b.meanRaw(v, f));
    EXPECT_NE(a.meanRaw(v, f), c.meanRaw(v, f));
}

TEST_F(CpmBankTest, VarianceClassesMatchFig6b)
{
    // Cores 1, 3, 5 show wider CPM spread than cores 2, 6, 7.
    const Hertz f = 4.2_GHz;
    auto spread = [&](size_t coreId) {
        stats::Accumulator acc;
        // Average the sensitivity spread over many personalities.
        for (uint64_t seed = 0; seed < 64; ++seed) {
            CpmBank bank(&curve_, params_, coreId, seed);
            stats::Accumulator vpb;
            for (size_t i = 0; i < bank.size(); ++i)
                vpb.add(bank.voltsPerBit(i, f).value());
            acc.add(vpb.stddev());
        }
        return acc.mean();
    };
    EXPECT_GT(spread(1), spread(2));
    EXPECT_GT(spread(3), spread(6));
    EXPECT_GT(spread(5), spread(7));
}

TEST_F(CpmBankTest, ChipArrayHas40Cpms)
{
    ChipCpmArray array(&curve_, params_, 8, 42);
    size_t total = 0;
    for (size_t core = 0; core < array.coreCount(); ++core)
        total += array.bank(core).size();
    EXPECT_EQ(total, 40u);
}

TEST_F(CpmBankTest, ChipMeanRawAveragesBanks)
{
    ChipCpmArray array(&curve_, params_, 8, 42);
    std::vector<Volts> voltages(8, Volts{1.16});
    std::vector<Hertz> freqs(8, Hertz{4.2e9});
    const double mean = array.chipMeanRaw(voltages, freqs);
    // Should be within the detector's representable band.
    EXPECT_GT(mean, 0.0);
    EXPECT_LT(mean, 11.0);
    // Raising every core's voltage raises the mean.
    std::vector<Volts> higher(8, Volts{1.19});
    EXPECT_GT(array.chipMeanRaw(higher, freqs), mean);
}

} // namespace
} // namespace agsim::sensors
