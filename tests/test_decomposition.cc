/**
 * @file
 * DropDecomposition record tests.
 */

#include <gtest/gtest.h>

#include "pdn/decomposition.h"

namespace agsim::pdn {
namespace {

DropDecomposition
sample()
{
    DropDecomposition d;
    d.loadline = 0.040;
    d.irGlobal = 0.025;
    d.irLocal = 0.015;
    d.typicalDidt = 0.006;
    d.worstDidt = 0.030;
    return d;
}

TEST(DropDecomposition, DerivedSums)
{
    const auto d = sample();
    EXPECT_NEAR(d.irDrop(), 0.040, 1e-12);
    EXPECT_NEAR(d.passive(), 0.080, 1e-12);
    EXPECT_NEAR(d.sharedPassive(), 0.065, 1e-12);
    EXPECT_NEAR(d.steady(), 0.086, 1e-12);
    EXPECT_NEAR(d.total(), 0.116, 1e-12);
}

TEST(DropDecomposition, DefaultIsZero)
{
    const DropDecomposition d;
    EXPECT_DOUBLE_EQ(d.total(), 0.0);
    EXPECT_DOUBLE_EQ(d.passive(), 0.0);
}

TEST(DropDecomposition, AdditionIsComponentWise)
{
    const auto d = sample();
    const auto sum = d + d;
    EXPECT_NEAR(sum.loadline, 0.080, 1e-12);
    EXPECT_NEAR(sum.irGlobal, 0.050, 1e-12);
    EXPECT_NEAR(sum.irLocal, 0.030, 1e-12);
    EXPECT_NEAR(sum.typicalDidt, 0.012, 1e-12);
    EXPECT_NEAR(sum.worstDidt, 0.060, 1e-12);
    EXPECT_NEAR(sum.total(), 2.0 * d.total(), 1e-12);
}

TEST(DropDecomposition, ScalingAveragesCorrectly)
{
    const auto d = sample();
    const auto averaged = (d + d + d).scaled(1.0 / 3.0);
    EXPECT_NEAR(averaged.loadline, d.loadline, 1e-12);
    EXPECT_NEAR(averaged.total(), d.total(), 1e-12);
}

TEST(DropDecomposition, ToStringCarriesMillivolts)
{
    const std::string text = sample().toString();
    EXPECT_NE(text.find("loadline=40.0mV"), std::string::npos);
    EXPECT_NE(text.find("ir_global=25.0mV"), std::string::npos);
    EXPECT_NE(text.find("ir_local=15.0mV"), std::string::npos);
    EXPECT_NE(text.find("total=116.0mV"), std::string::npos);
}

} // namespace
} // namespace agsim::pdn
