/**
 * @file
 * DropDecomposition record tests.
 */

#include <gtest/gtest.h>

#include "pdn/decomposition.h"

namespace agsim::pdn {
namespace {

DropDecomposition
sample()
{
    DropDecomposition d;
    d.loadline = Volts{0.040};
    d.irGlobal = Volts{0.025};
    d.irLocal = Volts{0.015};
    d.typicalDidt = Volts{0.006};
    d.worstDidt = Volts{0.030};
    return d;
}

TEST(DropDecomposition, DerivedSums)
{
    const auto d = sample();
    EXPECT_NEAR(d.irDrop(), Volts{0.040}, Volts{1e-12});
    EXPECT_NEAR(d.passive(), Volts{0.080}, Volts{1e-12});
    EXPECT_NEAR(d.sharedPassive(), Volts{0.065}, Volts{1e-12});
    EXPECT_NEAR(d.steady(), Volts{0.086}, Volts{1e-12});
    EXPECT_NEAR(d.total(), Volts{0.116}, Volts{1e-12});
}

TEST(DropDecomposition, DefaultIsZero)
{
    const DropDecomposition d;
    EXPECT_DOUBLE_EQ(d.total(), Volts{0.0});
    EXPECT_DOUBLE_EQ(d.passive(), Volts{0.0});
}

TEST(DropDecomposition, AdditionIsComponentWise)
{
    const auto d = sample();
    const auto sum = d + d;
    EXPECT_NEAR(sum.loadline, Volts{0.080}, Volts{1e-12});
    EXPECT_NEAR(sum.irGlobal, Volts{0.050}, Volts{1e-12});
    EXPECT_NEAR(sum.irLocal, Volts{0.030}, Volts{1e-12});
    EXPECT_NEAR(sum.typicalDidt, Volts{0.012}, Volts{1e-12});
    EXPECT_NEAR(sum.worstDidt, Volts{0.060}, Volts{1e-12});
    EXPECT_NEAR(sum.total(), 2.0 * d.total(), 1e-12);
}

TEST(DropDecomposition, ScalingAveragesCorrectly)
{
    const auto d = sample();
    const auto averaged = (d + d + d).scaled(1.0 / 3.0);
    EXPECT_NEAR(averaged.loadline, d.loadline, 1e-12);
    EXPECT_NEAR(averaged.total(), d.total(), 1e-12);
}

TEST(DropDecomposition, ToStringCarriesMillivolts)
{
    const std::string text = sample().toString();
    EXPECT_NE(text.find("loadline=40.0mV"), std::string::npos);
    EXPECT_NE(text.find("ir_global=25.0mV"), std::string::npos);
    EXPECT_NE(text.find("ir_local=15.0mV"), std::string::npos);
    EXPECT_NE(text.find("total=116.0mV"), std::string::npos);
}

} // namespace
} // namespace agsim::pdn
