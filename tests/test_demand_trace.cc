/**
 * @file
 * Demand-trace evaluation tests (the dynamic-borrowing extension),
 * plus the Vcs rail and droop-histogram chip features.
 */

#include <gtest/gtest.h>

#include "chip/chip.h"
#include "common/error.h"
#include "common/units.h"
#include "core/demand_trace.h"
#include "pdn/vrm.h"
#include "workload/library.h"

namespace agsim::core {
namespace {

using namespace agsim::units;

TEST(DemandTrace, DiurnalShape)
{
    const auto trace = makeDiurnalTrace(8, Seconds{86400.0}, 12);
    ASSERT_EQ(trace.size(), 12u);
    Seconds total = Seconds{0.0};
    size_t peak = 0, trough = 99;
    for (const auto &segment : trace) {
        total += segment.duration;
        peak = std::max(peak, segment.threads);
        trough = std::min(trough, segment.threads);
        EXPECT_GE(segment.threads, 1u);
        EXPECT_LE(segment.threads, 8u);
    }
    EXPECT_NEAR(total, Seconds{86400.0}, Seconds{1e-6});
    EXPECT_EQ(peak, 8u);
    EXPECT_LE(trough, 2u);
    // Peak sits mid-trace (daytime).
    EXPECT_EQ(trace[trace.size() / 2].threads, peak);
}

TEST(DemandTrace, Validation)
{
    EXPECT_THROW(makeDiurnalTrace(0, Seconds{100.0}), ConfigError);
    EXPECT_THROW(makeDiurnalTrace(4, Seconds{0.0}), ConfigError);
    EXPECT_THROW(makeDiurnalTrace(4, Seconds{100.0}, 1), ConfigError);

    const auto &profile = workload::byName("raytrace");
    EXPECT_THROW(evaluateDemandTrace(profile, {},
                                     PlacementPolicy::Consolidate),
                 ConfigError);
    DemandTrace over{{Seconds{100.0}, 9}};
    EXPECT_THROW(evaluateDemandTrace(profile, over,
                                     PlacementPolicy::Consolidate, 8),
                 ConfigError);
}

TEST(DemandTrace, EnergyIntegratesOverSegments)
{
    const auto &profile = workload::byName("raytrace");
    const DemandTrace trace{
        {Seconds{600.0}, 2}, {Seconds{1200.0}, 6}, {Seconds{600.0}, 2}};
    const auto eval = evaluateDemandTrace(
        profile, trace, PlacementPolicy::LoadlineBorrow, 8);
    EXPECT_NEAR(eval.duration, Seconds{2400.0}, Seconds{1e-9});
    EXPECT_GT(eval.meanPower, Watts{50.0});
    EXPECT_LT(eval.meanPower, Watts{160.0});
    EXPECT_NEAR(eval.chipEnergy, eval.meanPower * eval.duration, 1e-6);
}

TEST(DemandTrace, BorrowingWinsOverADay)
{
    // The extension's claim: integrated over a diurnal profile,
    // loadline borrowing beats consolidation.
    const auto &profile = workload::byName("raytrace");
    const auto trace = makeDiurnalTrace(8, Seconds{86400.0}, 8);
    const auto cons = evaluateDemandTrace(
        profile, trace, PlacementPolicy::Consolidate, 8);
    const auto borrow = evaluateDemandTrace(
        profile, trace, PlacementPolicy::LoadlineBorrow, 8);
    EXPECT_LT(borrow.chipEnergy, cons.chipEnergy * 0.99);
}

TEST(ChipExtras, VcsRailReportedSeparately)
{
    pdn::Vrm vrm(1);
    chip::ChipConfig config;
    chip::Chip chip(config, &vrm);
    chip.setMode(chip::GuardbandMode::StaticGuardband);
    chip.settle(Seconds{0.1});
    const Watts idleVcs = chip.vcsPower();
    EXPECT_GT(idleVcs, Watts{0.0});
    EXPECT_LT(idleVcs, config.vcs.powerAtRef + Watts{1e-9});

    for (size_t i = 0; i < 8; ++i)
        chip.setLoad(i, chip::CoreLoad::running(1.0, 13.0_mV, 24.0_mV));
    chip.settle(Seconds{0.1});
    EXPECT_NEAR(chip.vcsPower(), config.vcs.powerAtRef, 1e-9);
    EXPECT_GT(chip.vcsPower(), idleVcs);
}

TEST(ChipExtras, DroopHistogramCollectsEvents)
{
    pdn::Vrm vrm(1);
    chip::Chip chip(chip::ChipConfig(), &vrm);
    chip.setMode(chip::GuardbandMode::StaticGuardband);
    for (size_t i = 0; i < 8; ++i)
        chip.setLoad(i, chip::CoreLoad::running(1.0, 13.0_mV, 26.0_mV));
    chip.settle(Seconds{5.0});

    const auto &histogram = chip.droopHistogram();
    // Droops arrive ~10+/s at 8 active cores: 5 s collects dozens.
    EXPECT_GT(histogram.total(), 20u);
    // Depths live in the worst-case band (tens of millivolts).
    EXPECT_EQ(histogram.underflow(), 0u);
    EXPECT_LT(double(histogram.overflow()),
              0.05 * double(histogram.total()));

    chip.resetDroopHistogram();
    EXPECT_EQ(chip.droopHistogram().total(), 0u);
}

TEST(ChipExtras, IdleChipHasNoDroops)
{
    pdn::Vrm vrm(1);
    chip::Chip chip(chip::ChipConfig(), &vrm);
    chip.setMode(chip::GuardbandMode::StaticGuardband);
    chip.settle(Seconds{1.0});
    EXPECT_EQ(chip.droopHistogram().total(), 0u);
}

} // namespace
} // namespace agsim::core
