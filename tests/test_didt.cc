/**
 * @file
 * di/dt noise tests: the smoothing law (typical noise shrinks with
 * active cores), the alignment law (worst-case grows), droop arrival
 * statistics, and determinism.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "pdn/didt.h"

namespace agsim::pdn {
namespace {

using namespace agsim::units;

std::vector<Volts>
amps(size_t active, Volts amplitude, size_t cores = 8)
{
    std::vector<Volts> out(cores, Volts{0.0});
    for (size_t i = 0; i < active; ++i)
        out[i] = amplitude;
    return out;
}

TEST(Didt, TypicalLevelZeroWhenIdle)
{
    DidtModel model;
    EXPECT_DOUBLE_EQ(model.typicalLevel(amps(0, Volts{0.0})), Volts{0.0});
}

TEST(Didt, TypicalLevelEqualsAmplitudeForOneCore)
{
    DidtModel model;
    EXPECT_NEAR(model.typicalLevel(amps(1, 12.0_mV)), 12.0_mV, 1e-12);
}

TEST(Didt, SmoothingFollowsInverseSqrt)
{
    // Sec. 4.3: staggered multi-core activity smooths typical ripple.
    DidtModel model;
    const Volts amp = 12.0_mV;
    const Volts one = model.typicalLevel(amps(1, amp));
    const Volts four = model.typicalLevel(amps(4, amp));
    const Volts eight = model.typicalLevel(amps(8, amp));
    EXPECT_NEAR(four, one / 2.0, 1e-12);
    EXPECT_NEAR(eight, one / std::sqrt(8.0), 1e-12);
    EXPECT_LT(eight, four);
}

TEST(Didt, WorstDepthGrowsWithActiveCores)
{
    // Sec. 4.3: random alignment deepens worst-case droops slightly.
    DidtModel model;
    const Volts amp = 22.0_mV;
    Volts prev = Volts{0.0};
    for (size_t active = 1; active <= 8; ++active) {
        const Volts depth = model.worstDepth(amps(active, amp));
        EXPECT_GT(depth, prev);
        prev = depth;
    }
    // Growth is "slight": less than 2x from 1 to 8 cores.
    EXPECT_LT(model.worstDepth(amps(8, amp)),
              2.0 * model.worstDepth(amps(1, amp)));
}

TEST(Didt, WorstDepthZeroWhenIdle)
{
    DidtModel model;
    EXPECT_DOUBLE_EQ(model.worstDepth(amps(0, Volts{0.0})), Volts{0.0});
}

TEST(Didt, StepDeterministicBySeed)
{
    DidtModel a(DidtParams(), 7, 1);
    DidtModel b(DidtParams(), 7, 1);
    const auto ta = amps(4, 12.0_mV);
    const auto wa = amps(4, 22.0_mV);
    for (int i = 0; i < 100; ++i) {
        const auto sa = a.step(ta, wa, Seconds{1e-3});
        const auto sb = b.step(ta, wa, Seconds{1e-3});
        ASSERT_DOUBLE_EQ(sa.typicalNow, sb.typicalNow);
        ASSERT_DOUBLE_EQ(sa.worstDroop, sb.worstDroop);
        ASSERT_EQ(sa.droopEvents, sb.droopEvents);
    }
}

TEST(Didt, DroopArrivalRateMatchesConfig)
{
    DidtParams params;
    params.droopRatePerSecond = 4.0;
    params.ratePerExtraCore = 0.0;
    DidtModel model(params, 13);
    const auto ta = amps(1, 12.0_mV);
    const auto wa = amps(1, 22.0_mV);
    int events = 0;
    const int steps = 100000; // 100 s at 1 ms
    for (int i = 0; i < steps; ++i)
        events += model.step(ta, wa, Seconds{1e-3}).droopEvents;
    EXPECT_NEAR(double(events) / 100.0, 4.0, 0.5);
}

TEST(Didt, DroopRateGrowsWithCores)
{
    DidtModel model(DidtParams(), 17);
    auto countEvents = [&model](size_t active) {
        const auto ta = amps(active, 12.0_mV);
        const auto wa = amps(active, 22.0_mV);
        int events = 0;
        for (int i = 0; i < 50000; ++i)
            events += model.step(ta, wa, Seconds{1e-3}).droopEvents;
        return events;
    };
    const int one = countEvents(1);
    const int eight = countEvents(8);
    EXPECT_GT(eight, one * 2);
}

TEST(Didt, TypicalSampleJittersAroundMean)
{
    DidtModel model(DidtParams(), 23);
    const auto ta = amps(4, 12.0_mV);
    const auto wa = amps(4, 22.0_mV);
    Volts sum = Volts{0.0};
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const auto s = model.step(ta, wa, Seconds{1e-3});
        EXPECT_GE(s.typicalNow, Volts{0.0});
        sum += s.typicalNow;
    }
    EXPECT_NEAR(sum / double(n), model.typicalLevel(ta), Volts{0.001});
}

TEST(Didt, NoDroopsWhenIdle)
{
    DidtModel model(DidtParams(), 29);
    const auto zero = amps(0, Volts{0.0});
    for (int i = 0; i < 1000; ++i) {
        const auto s = model.step(zero, zero, Seconds{1e-3});
        ASSERT_EQ(s.droopEvents, 0);
        ASSERT_DOUBLE_EQ(s.worstDroop, Volts{0.0});
    }
}

TEST(Didt, MismatchedVectorsPanic)
{
    DidtModel model;
    EXPECT_THROW(model.step(amps(1, 1.0_mV, 8), amps(1, 1.0_mV, 4), Seconds{1e-3}),
                 InternalError);
}

TEST(Didt, RejectsBadParams)
{
    DidtParams params;
    params.droopRatePerSecond = -1.0;
    EXPECT_THROW(DidtModel(params, 1), ConfigError);

    params = DidtParams();
    params.depthJitter = -0.1;
    EXPECT_THROW(DidtModel(params, 1), ConfigError);
}

} // namespace
} // namespace agsim::pdn
