/**
 * @file
 * DPLL tests: margin tracking, caps, slew limiting, droop response.
 */

#include <gtest/gtest.h>

#include "clock/dpll.h"
#include "common/error.h"
#include "common/units.h"
#include "power/vf_curve.h"

namespace agsim::clock {
namespace {

using namespace agsim::units;
using power::VfCurve;

class DpllTest : public ::testing::Test
{
  protected:
    VfCurve curve_;
    DpllParams params_;
};

TEST_F(DpllTest, SettlesToMarginTarget)
{
    Dpll dpll(&curve_, params_, 4.2_GHz);
    const Volts v = Volts{1.15};
    for (int i = 0; i < 10; ++i)
        dpll.step(v, Seconds{1e-3});
    EXPECT_NEAR(dpll.frequency(), curve_.fmaxWithMargin(v), 1e3);
}

TEST_F(DpllTest, BoostsUnderHighVoltage)
{
    // At the full static setpoint with light load the DPLL overclocks.
    Dpll dpll(&curve_, params_, 4.2_GHz);
    const Volts v = curve_.vddStatic(4.2_GHz) - Volts{0.030}; // light drop
    for (int i = 0; i < 10; ++i)
        dpll.step(v, Seconds{1e-3});
    EXPECT_GT(dpll.frequency(), Hertz{4.2e9});
    EXPECT_LE(dpll.frequency(),
              Hertz{4.2e9 * curve_.params().overclockCeiling + 1.0});
}

TEST_F(DpllTest, SlowsUnderDroopedVoltage)
{
    Dpll dpll(&curve_, params_, 4.2_GHz);
    const Volts sagging = curve_.vminAt(4.2_GHz) - Volts{0.020};
    for (int i = 0; i < 10; ++i)
        dpll.step(sagging, Seconds{1e-3});
    EXPECT_LT(dpll.frequency(), Hertz{4.2e9});
}

TEST_F(DpllTest, CapPinsFrequency)
{
    Dpll dpll(&curve_, params_, 4.2_GHz);
    dpll.setCap(4.2_GHz);
    const Volts generous = curve_.vddStatic(4.2_GHz);
    for (int i = 0; i < 10; ++i)
        dpll.step(generous, Seconds{1e-3});
    EXPECT_NEAR(dpll.frequency(), Hertz{4.2e9}, Hertz{1.0});
    // Removing the cap lets it boost again.
    dpll.setCap(Hertz{0.0});
    for (int i = 0; i < 10; ++i)
        dpll.step(generous, Seconds{1e-3});
    EXPECT_GT(dpll.frequency(), Hertz{4.2e9});
}

TEST_F(DpllTest, FloorLimitsDownwardExcursion)
{
    Dpll dpll(&curve_, params_, 4.2_GHz);
    for (int i = 0; i < 100; ++i)
        dpll.step(Volts{0.2}, Seconds{1e-3}); // catastrophic voltage
    EXPECT_GE(dpll.frequency(), params_.floorFrequency - Hertz{1.0});
}

TEST_F(DpllTest, SlewRateLimitsStep)
{
    DpllParams slow;
    slow.slewPerSecond = 0.01; // 1% per second: visibly slew-limited
    Dpll dpll(&curve_, slow, 4.2_GHz);
    const Volts generous = curve_.vddStatic(4.2_GHz);
    const Hertz before = dpll.frequency();
    dpll.step(generous, Seconds{1e-3});
    EXPECT_LE(dpll.frequency() - before,
              before * 0.01 * 1e-3 + Hertz{1.0});
}

TEST_F(DpllTest, HardwareSlewIsEffectivelyInstant)
{
    // 7% in 10 ns means a millisecond step always settles.
    Dpll dpll(&curve_, params_, 3.0_GHz);
    const Volts v = Volts{1.15};
    dpll.step(v, Seconds{1e-3});
    EXPECT_NEAR(dpll.frequency(), curve_.fmaxWithMargin(v), 1e3);
}

TEST_F(DpllTest, LockToOverridesLoop)
{
    Dpll dpll(&curve_, params_, 4.2_GHz);
    dpll.lockTo(3.5_GHz);
    EXPECT_DOUBLE_EQ(dpll.frequency(), Hertz{3.5e9});
}

TEST_F(DpllTest, DroopStallScalesWithDepthAndEvents)
{
    Dpll dpll(&curve_, params_, 4.2_GHz);
    const Seconds none = dpll.droopStall(Volts{0.0}, 3);
    EXPECT_DOUBLE_EQ(none, Seconds{0.0});
    EXPECT_DOUBLE_EQ(dpll.droopStall(Volts{0.020}, 0), Seconds{0.0});
    const Seconds one = dpll.droopStall(Volts{0.020}, 1);
    const Seconds two = dpll.droopStall(Volts{0.020}, 2);
    EXPECT_GT(one, Seconds{0.0});
    EXPECT_NEAR(two, 2.0 * one, 1e-15);
    EXPECT_GT(dpll.droopStall(Volts{0.040}, 1), one);
    // A droop response is sub-microsecond per event: tiny.
    EXPECT_LT(one, Seconds{1e-6});
}

TEST_F(DpllTest, RejectsBadConstruction)
{
    EXPECT_THROW(Dpll(nullptr, params_, 4.2_GHz), ConfigError);
    EXPECT_THROW(Dpll(&curve_, params_, Hertz{0.0}), ConfigError);
    DpllParams bad = params_;
    bad.slewPerSecond = 0.0;
    EXPECT_THROW(Dpll(&curve_, bad, 4.2_GHz), ConfigError);
}

} // namespace
} // namespace agsim::clock
