/**
 * @file
 * Nanosecond droop-response tests: the quantitative basis of the
 * paper's adaptive-guardbanding premise.
 */

#include <gtest/gtest.h>

#include "clock/droop_response.h"
#include "common/error.h"
#include "common/units.h"
#include "power/vf_curve.h"

namespace agsim::clock {
namespace {

using namespace agsim::units;
using power::VfCurve;

class DroopResponseTest : public ::testing::Test
{
  protected:
    /** Adaptive operating point: the settled CPM-DPLL margin. */
    Volts
    adaptiveVoltage(Hertz f) const
    {
        return curve_.vminAt(f) + curve_.params().calibratedMargin;
    }

    VfCurve curve_;
    DpllParams fastDpll_; // POWER7+: 7% in 10 ns
};

TEST_F(DroopResponseTest, FastDpllRidesThroughTypicalDroop)
{
    // 35 mV droop against a 6 mV margin: a fixed clock would violate,
    // the POWER7+ DPLL must not.
    DroopEvent event;
    const Hertz f = 4.2_GHz;
    const auto outcome = simulateDroop(curve_, fastDpll_, true,
                                       adaptiveVoltage(f), f, event);
    EXPECT_FALSE(outcome.violated);
    // Throughput cost: tens of nanoseconds of stall per event.
    EXPECT_GT(outcome.lostTime, Seconds{1e-9});
    EXPECT_LT(outcome.lostTime, Seconds{0.5e-6});
    // The loop never eats the full calibrated reserve.
    EXPECT_GT(outcome.minMargin, Volts{-1e-6});
}

TEST_F(DroopResponseTest, FixedClockWithTightMarginViolates)
{
    DroopEvent event;
    const Hertz f = 4.2_GHz;
    const auto outcome = simulateDroop(curve_, fastDpll_, false,
                                       adaptiveVoltage(f), f, event);
    EXPECT_TRUE(outcome.violated);
    EXPECT_LT(outcome.minMargin, Volts{0.0});
    EXPECT_DOUBLE_EQ(outcome.lostCycles, 0.0); // it never slowed down
}

TEST_F(DroopResponseTest, SlowClockViolatesEvenWhenAdaptive)
{
    // A conventional PLL relocks on microsecond scales: far too slow
    // for a 35 mV sag with a 250 ns recovery.
    DpllParams slow = fastDpll_;
    slow.slewPerSecond = 0.07 / 10e-6; // 7% in 10 us, 1000x slower
    DroopEvent event;
    const Hertz f = 4.2_GHz;
    const auto outcome = simulateDroop(curve_, slow, true,
                                       adaptiveVoltage(f), f, event);
    EXPECT_TRUE(outcome.violated);
}

TEST_F(DroopResponseTest, StaticDesignSurvivesWithFullGuardband)
{
    // Provision the static margin the helper reports: no violation.
    DroopEvent event;
    const Hertz f = 4.2_GHz;
    const Volts needed = staticGuardbandNeeded(Volts{1.15}, event);
    const Volts vStatic = curve_.vminAt(f) + needed + 1.0_mV;
    const auto outcome = simulateDroop(curve_, fastDpll_, false, vStatic,
                                       f, event);
    EXPECT_FALSE(outcome.violated);
    // The needed margin exceeds the raw depth (the ring deepens it).
    EXPECT_GT(needed, event.depth);
    EXPECT_LT(needed,
              event.depth * (1.0 + event.ringFraction) + 2.0_mV);
}

TEST_F(DroopResponseTest, LostCyclesScaleWithDepth)
{
    const Hertz f = 4.2_GHz;
    DroopEvent shallow;
    shallow.depth = Volts{0.020};
    DroopEvent deep;
    deep.depth = Volts{0.050};
    const auto a = simulateDroop(curve_, fastDpll_, true,
                                 adaptiveVoltage(f), f, shallow);
    const auto b = simulateDroop(curve_, fastDpll_, true,
                                 adaptiveVoltage(f), f, deep);
    EXPECT_GT(b.lostCycles, a.lostCycles);
}

TEST_F(DroopResponseTest, TraceIsWellFormed)
{
    DroopEvent event;
    DroopSimParams sim;
    sim.duration = Seconds{1.0e-6};
    const Hertz f = 4.0_GHz;
    const auto outcome = simulateDroop(curve_, fastDpll_, true,
                                       adaptiveVoltage(f), f, event, sim);
    ASSERT_EQ(outcome.trace.size(), size_t(sim.duration / sim.dt));
    // Voltage sags to a trough within the onset window, then recovers.
    Volts trough = adaptiveVoltage(f);
    for (size_t i = 0; i < 100; ++i)
        trough = std::min(trough, outcome.trace[i].voltage);
    const auto &last = outcome.trace.back();
    EXPECT_LT(trough, adaptiveVoltage(f) - Volts{0.030});
    EXPECT_GT(last.voltage, adaptiveVoltage(f) - Volts{0.005});
    // The DPLL recovers its frequency by the end.
    EXPECT_NEAR(last.clockFrequency, curve_.fmaxWithMargin(last.voltage),
                30e6);
}

TEST_F(DroopResponseTest, NoRingMatchesPureExponential)
{
    DroopEvent event;
    event.ringFraction = 0.0;
    EXPECT_NEAR(staticGuardbandNeeded(Volts{1.15}, event), event.depth, 1e-4);
}

TEST_F(DroopResponseTest, Validation)
{
    DroopEvent event;
    DroopSimParams sim;
    sim.dt = Seconds{0.0};
    EXPECT_THROW(simulateDroop(curve_, fastDpll_, true, Volts{1.1}, Hertz{4.2e9},
                               event, sim),
                 ConfigError);
    event.depth = -Volts{1.0};
    EXPECT_THROW(simulateDroop(curve_, fastDpll_, true, Volts{1.1}, Hertz{4.2e9},
                               event),
                 ConfigError);
}

} // namespace
} // namespace agsim::clock
