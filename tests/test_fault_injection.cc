/**
 * @file
 * Fault subsystem tests: plan validation and scheduling, injector
 * composition rules, CPM/VRM injection points, the StaticGuardband
 * safety property (no timing emergency under any control-path fault
 * plan), and the determinism contract (same seed + plan => bit-identical
 * telemetry).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chip/chip.h"
#include "common/error.h"
#include "common/units.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "pdn/vrm.h"
#include "sensors/cpm_bank.h"

namespace agsim::fault {
namespace {

using namespace agsim::units;
using chip::Chip;
using chip::ChipConfig;
using chip::CoreLoad;
using chip::GuardbandMode;

TEST(FaultPlan, BuildersAppendSpecs)
{
    FaultPlan plan;
    plan.cpmOptimisticBias(Seconds{0.1}, Seconds{0.5}, 20.0_mV, 3)
        .cpmStuckAt(Seconds{0.2}, Seconds{0.0}, 7)
        .cpmDropout(Seconds{0.3}, Seconds{0.1})
        .vrmDacStuck(Seconds{0.4})
        .vrmDacOffset(Seconds{0.5}, Seconds{0.2}, -5.0_mV)
        .firmwareStall(Seconds{0.6}, Seconds{0.3})
        .droopStorm(Seconds{0.7}, Seconds{0.4}, 5.0, 1.2);
    ASSERT_EQ(plan.faults.size(), 7u);
    EXPECT_EQ(plan.faults[0].kind, FaultKind::CpmOptimisticBias);
    EXPECT_EQ(plan.faults[0].core, 3);
    EXPECT_EQ(plan.faults[1].kind, FaultKind::CpmStuckAt);
    EXPECT_DOUBLE_EQ(plan.faults[1].magnitude, 7.0);
    EXPECT_EQ(plan.faults[6].kind, FaultKind::DroopStorm);
    EXPECT_DOUBLE_EQ(plan.faults[6].depthScale, 1.2);
    EXPECT_NO_THROW(plan.validate(8));
}

TEST(FaultPlan, ActiveAtRespectsWindows)
{
    FaultSpec spec;
    spec.start = Seconds{1.0};
    spec.duration = Seconds{0.5};
    EXPECT_FALSE(spec.activeAt(Seconds{0.99}));
    EXPECT_TRUE(spec.activeAt(Seconds{1.0}));
    EXPECT_TRUE(spec.activeAt(Seconds{1.49}));
    EXPECT_FALSE(spec.activeAt(Seconds{1.5}));

    spec.duration = Seconds{0.0}; // forever
    EXPECT_TRUE(spec.activeAt(Seconds{1e9}));
}

TEST(FaultPlan, ValidationRejectsNonsense)
{
    {
        FaultPlan plan;
        plan.cpmDropout(Seconds{-0.1}, Seconds{0.0});
        EXPECT_THROW(plan.validate(8), ConfigError);
    }
    {
        FaultPlan plan;
        plan.cpmOptimisticBias(Seconds{0.0}, Seconds{0.0}, 10.0_mV, 8); // core out of range
        EXPECT_THROW(plan.validate(8), ConfigError);
    }
    {
        FaultPlan plan;
        plan.droopStorm(Seconds{0.0}, Seconds{1.0}, 0.0); // non-positive rate multiplier
        EXPECT_THROW(plan.validate(8), ConfigError);
    }
    {
        FaultPlan plan;
        plan.cpmStuckAt(Seconds{0.0}, Seconds{1.0}, -2); // negative detector position
        EXPECT_THROW(plan.validate(8), ConfigError);
    }
    {
        FaultPlan plan;
        plan.firmwareStall(Seconds{0.1}, Seconds{-0.5}); // negative duration
        EXPECT_THROW(plan.validate(8), ConfigError);
    }
    {
        FaultPlan plan; // overlapping same-kind/same-target windows
        plan.droopStorm(Seconds{0.0}, Seconds{1.0}, 2.0)
            .droopStorm(Seconds{0.5}, Seconds{1.0}, 3.0);
        EXPECT_THROW(plan.validate(8), ConfigError);
    }
    {
        FaultPlan plan; // an open-ended spec shadows any later same-target spec
        plan.vrmDacStuck(Seconds{0.0})
            .vrmDacStuck(Seconds{5.0}, Seconds{1.0});
        EXPECT_THROW(plan.validate(8), ConfigError);
    }
    {
        FaultPlan plan; // non-monotonic start times for one target
        plan.cpmDropout(Seconds{1.0}, Seconds{0.1}, 2)
            .cpmDropout(Seconds{0.5}, Seconds{0.1}, 2);
        EXPECT_THROW(plan.validate(8), ConfigError);
    }
    {
        FaultPlan plan;
        plan.slowRestart(Seconds{0.0}, Seconds{1.0}, 0.5); // factor < 1
        EXPECT_THROW(plan.validate(8, FaultScope::Server), ConfigError);
    }
}

TEST(FaultPlan, ServerScopeKindsRejectedAtChipScope)
{
    FaultPlan plan;
    plan.serverCrash(Seconds{0.1}, Seconds{0.2});
    EXPECT_THROW(plan.validate(8), ConfigError);
    EXPECT_THROW(plan.validate(8, FaultScope::Chip), ConfigError);
    EXPECT_NO_THROW(plan.validate(8, FaultScope::Server));
    EXPECT_THROW(FaultInjector(plan, 8), ConfigError);
    EXPECT_NO_THROW(FaultInjector(plan, 8, FaultScope::Server));
}

TEST(FaultInjector, ServerScopeEffectsAndRestoreClock)
{
    FaultPlan plan;
    plan.serverCrash(Seconds{0.1}, Seconds{0.2})
        .serverHang(Seconds{0.5}, Seconds{0.1})
        .vrmShutdown(Seconds{0.8}, Seconds{0.1})
        .slowRestart(Seconds{0.0}, Seconds{1.0}, 3.0);
    FaultInjector injector(plan, 8, FaultScope::Server);
    EXPECT_EQ(injector.scope(), FaultScope::Server);

    injector.advance(Seconds{0.15});
    EXPECT_TRUE(injector.active().serverCrash);
    EXPECT_FALSE(injector.active().serverHang);
    EXPECT_NEAR(injector.active().restartSlowdown, 3.0, 1e-12);

    injector.advance(Seconds{0.4}); // t = 0.55: hang window
    EXPECT_FALSE(injector.active().serverCrash);
    EXPECT_TRUE(injector.active().serverHang);

    injector.restoreClock(Seconds{0.85}); // jump into the VRM outage
    EXPECT_EQ(injector.now(), Seconds{0.85});
    EXPECT_TRUE(injector.active().vrmShutdown);
    EXPECT_FALSE(injector.active().serverHang);
    EXPECT_THROW(injector.restoreClock(Seconds{-1.0}), ConfigError);
}

TEST(FaultInjector, SchedulesAndExpiresFaults)
{
    FaultPlan plan;
    plan.firmwareStall(Seconds{0.10}, Seconds{0.05});
    FaultInjector injector(plan, 8);
    EXPECT_FALSE(injector.active().any);

    injector.advance(Seconds{0.09});
    EXPECT_FALSE(injector.active().firmwareStall);
    injector.advance(Seconds{0.02}); // t = Seconds{0.11}, inside window
    EXPECT_TRUE(injector.active().firmwareStall);
    EXPECT_EQ(injector.activeSpecCount(), 1u);
    injector.advance(Seconds{0.05}); // t = Seconds{0.16}, past window
    EXPECT_FALSE(injector.active().firmwareStall);
    EXPECT_FALSE(injector.active().any);

    injector.reset();
    EXPECT_EQ(injector.now(), Seconds{0.0});
    EXPECT_FALSE(injector.active().any);
}

TEST(FaultInjector, ComposesOverlappingFaults)
{
    // Same kind on *different* targets (chip-wide + one core) and
    // different kinds may overlap; validate() only rejects same-kind/
    // same-target overlap.
    FaultPlan plan;
    plan.cpmOptimisticBias(Seconds{0.0}, Seconds{0.0}, 10.0_mV)       // all cores
        .cpmOptimisticBias(Seconds{0.0}, Seconds{0.0}, 5.0_mV, 2)     // extra on core 2
        .droopStorm(Seconds{0.0}, Seconds{0.0}, 6.0, 1.5)
        .cpmStuckAt(Seconds{0.0}, Seconds{0.0}, 5)                    // chip-wide
        .cpmStuckAt(Seconds{0.0}, Seconds{0.0}, 9, 1);                // later spec wins
    FaultInjector injector(plan, 8);
    injector.advance(Seconds{0.1});

    const ActiveFaultSet &active = injector.active();
    EXPECT_TRUE(active.any);
    // Biases add.
    EXPECT_NEAR(active.cpm[0].biasVolts, 10.0_mV, 1e-12);
    EXPECT_NEAR(active.cpm[2].biasVolts, 15.0_mV, 1e-12);
    EXPECT_NEAR(active.droopRateScale, 6.0, 1e-12);
    EXPECT_NEAR(active.droopDepthScale, 1.5, 1e-12);
    // Stuck-at: the later per-core spec overrides the chip-wide one
    // on its core; other cores keep the chip-wide position.
    EXPECT_EQ(active.cpm[1].stuckPosition, 9);
    EXPECT_EQ(active.cpm[0].stuckPosition, 5);
}

TEST(FaultInjector, SequentialSameTargetWindowsAreLegal)
{
    FaultPlan plan;
    plan.firmwareStall(Seconds{0.1}, Seconds{0.1})
        .firmwareStall(Seconds{0.2}, Seconds{0.1}); // abuts, no overlap
    FaultInjector injector(plan, 8);
    injector.advance(Seconds{0.15});
    EXPECT_TRUE(injector.active().firmwareStall);
    injector.advance(Seconds{0.1}); // t = 0.25, inside the second window
    EXPECT_TRUE(injector.active().firmwareStall);
    injector.advance(Seconds{0.1}); // t = 0.35, past both
    EXPECT_FALSE(injector.active().any);
}

TEST(FaultInjector, RejectsBadPlansAndSteps)
{
    FaultPlan bad;
    bad.cpmDropout(Seconds{0.0}, Seconds{0.0}, 12); // core out of range for 8 cores
    EXPECT_THROW(FaultInjector(bad, 8), ConfigError);

    FaultInjector injector(FaultPlan(), 8);
    EXPECT_THROW(injector.advance(Seconds{0.0}), InternalError);
}

TEST(CpmBankFaults, FaultShapesControlVoltage)
{
    power::VfCurve curve;
    sensors::CpmBank bank(&curve, sensors::CpmParams(), 0, 42);
    const Hertz f = Hertz{4.2e9};
    const Volts v = Volts{1.15};

    const Volts healthy = bank.controlVoltage(v, f);
    EXPECT_NEAR(healthy, v, 20.0_mV); // small calibration residual only

    sensors::CpmFault optimistic;
    optimistic.biasVolts = 25.0_mV;
    bank.setFault(optimistic);
    EXPECT_FALSE(bank.blind());
    EXPECT_NEAR(bank.controlVoltage(v, f), healthy + 25.0_mV, 1e-12);

    sensors::CpmFault dropout;
    dropout.dropout = true;
    bank.setFault(dropout);
    EXPECT_TRUE(bank.blind());
    // Dark bank pegs high: reads as far more margin than reality.
    EXPECT_GT(bank.controlVoltage(v, f), healthy + 50.0_mV);

    bank.clearFault();
    EXPECT_FALSE(bank.fault().any());
    EXPECT_NEAR(bank.controlVoltage(v, f), healthy, 1e-12);
}

TEST(VrmFaults, StuckDacIgnoresWritesAndOffsetIsInvisible)
{
    pdn::Vrm vrm(1);
    vrm.setSetpoint(0, Volts{1.20});
    vrm.injectDacStuck(0, true);
    vrm.setSetpoint(0, Volts{1.10});
    // Write dropped: firmware reads back the stuck value.
    EXPECT_NEAR(vrm.setpoint(0), Volts{1.20}, Volts{1e-12});

    vrm.injectDacStuck(0, false);
    vrm.setSetpoint(0, Volts{1.10});
    EXPECT_NEAR(vrm.setpoint(0), Volts{1.10}, Volts{1e-12});

    // A DAC offset changes the delivered voltage but not the readback.
    vrm.injectDacOffset(0, -8.0_mV);
    EXPECT_NEAR(vrm.setpoint(0), Volts{1.10}, Volts{1e-12});
    EXPECT_NEAR(vrm.outputAt(0, Amps{0.0}), Volts{1.10} - 8.0_mV, 1e-12);

    vrm.clearFaults();
    EXPECT_NEAR(vrm.outputAt(0, Amps{0.0}), Volts{1.10}, Volts{1e-12});
}

/** Rig: one chip with an attached injector, stepped for a duration. */
struct FaultRun
{
    explicit FaultRun(const FaultPlan &plan, GuardbandMode mode,
                      uint64_t seed = 0, Volts maxUndervolt = Volts{0.0})
        : vrm(1)
    {
        ChipConfig config;
        if (seed != 0)
            config.seed = seed;
        if (maxUndervolt > Volts{0.0})
            config.undervolt.maxUndervolt = maxUndervolt;
        chip = std::make_unique<Chip>(config, &vrm);
        chip->setMode(mode);
        for (size_t i = 0; i < chip->coreCount(); ++i)
            chip->setLoad(i, CoreLoad::running(1.0, 13.0_mV, 24.0_mV));
        chip->settle(Seconds{0.5});
        injector = std::make_unique<FaultInjector>(plan,
                                                   chip->coreCount());
        chip->attachFaultInjector(injector.get());
    }

    void
    run(Seconds duration, Seconds dt = Seconds{1e-3})
    {
        const int steps = int(duration / dt);
        for (int i = 0; i < steps; ++i)
            chip->step(dt);
    }

    pdn::Vrm vrm;
    std::unique_ptr<Chip> chip;
    std::unique_ptr<FaultInjector> injector;
};

/**
 * Safety property: StaticGuardband absorbs every *control-path* fault.
 * A lying CPM, a stalled firmware tick, or a stuck DAC cannot hurt the
 * static mode because its setpoint never depends on the sensors. (Plans
 * that physically attack the rail — deep droop storms, large DAC
 * under-delivery — can breach ANY guardband and are out of scope; see
 * docs/RELIABILITY.md.)
 */
class StaticImmunityTest
    : public ::testing::TestWithParam<int>
{
  protected:
    static FaultPlan
    planFor(int variant)
    {
        FaultPlan plan;
        switch (variant) {
          case 0:
            plan.cpmOptimisticBias(Seconds{0.05}, Seconds{0.0}, 40.0_mV);
            break;
          case 1:
            plan.cpmDropout(Seconds{0.05}, Seconds{0.0});
            break;
          case 2:
            plan.cpmStuckAt(Seconds{0.05}, Seconds{0.0}, 11);
            break;
          case 3:
            plan.firmwareStall(Seconds{0.05}, Seconds{0.0});
            break;
          case 4:
            plan.vrmDacStuck(Seconds{0.05});
            break;
          case 5:
            // Small under-delivery: inside the static guardband's
            // remaining slack plus the emergency tolerance band (the
            // provisioned envelope is nearly exhausted at the
            // full-load calibration corner — see docs/RELIABILITY.md).
            plan.vrmDacOffset(Seconds{0.05}, Seconds{0.0}, -5.0_mV);
            break;
          case 6:
            // Rate-only storm: depths stay within the characterized
            // envelope the guardband was provisioned for.
            plan.droopStorm(Seconds{0.05}, Seconds{0.0}, 8.0);
            break;
          default:
            // Everything at once.
            plan.cpmOptimisticBias(Seconds{0.05}, Seconds{0.0}, 40.0_mV)
                .cpmDropout(Seconds{0.1}, Seconds{0.0}, 3)
                .firmwareStall(Seconds{0.05}, Seconds{0.0})
                .vrmDacStuck(Seconds{0.2})
                .droopStorm(Seconds{0.3}, Seconds{0.0}, 4.0);
            break;
        }
        return plan;
    }
};

TEST_P(StaticImmunityTest, StaticModeNeverSeesEmergency)
{
    FaultRun rig(planFor(GetParam()), GuardbandMode::StaticGuardband);
    rig.run(Seconds{1.0});
    EXPECT_EQ(rig.chip->safetyMonitor().totalEmergencies(), 0);
    EXPECT_FALSE(rig.chip->safetyDemoted());
    EXPECT_GT(rig.chip->lastWorstMargin(), Volts{0.0});
}

INSTANTIATE_TEST_SUITE_P(ControlPathFaultPlans, StaticImmunityTest,
                         ::testing::Range(0, 8));

/** Same seed + same plan must replay bit-identically. */
TEST(FaultDeterminism, SameSeedSamePlanBitIdenticalTelemetry)
{
    FaultPlan plan;
    plan.cpmOptimisticBias(Seconds{0.1}, Seconds{0.0}, 30.0_mV)
        .droopStorm(Seconds{0.2}, Seconds{0.3}, 4.0, 1.1)
        .firmwareStall(Seconds{0.5}, Seconds{0.1});

    auto telemetryOf = [&](uint64_t seed) {
        FaultRun rig(plan, GuardbandMode::AdaptiveUndervolt, seed,
                     Volts{0.12});
        rig.run(Seconds{1.2});
        return rig.chip->telemetry().windows();
    };

    const auto a = telemetryOf(12345);
    const auto b = telemetryOf(12345);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (size_t w = 0; w < a.size(); ++w) {
        EXPECT_EQ(a[w].sampleCpm, b[w].sampleCpm) << "window " << w;
        EXPECT_EQ(a[w].stickyCpm, b[w].stickyCpm) << "window " << w;
        EXPECT_EQ(a[w].meanCoreVoltage, b[w].meanCoreVoltage);
        EXPECT_EQ(a[w].meanCoreFrequency, b[w].meanCoreFrequency);
        // Bit-identical, not approximately equal.
        EXPECT_EQ(a[w].meanChipPower, b[w].meanChipPower);
        EXPECT_EQ(a[w].meanSetpoint, b[w].meanSetpoint);
        EXPECT_EQ(a[w].emergencyCount, b[w].emergencyCount);
        EXPECT_EQ(a[w].demotionCount, b[w].demotionCount);
        EXPECT_EQ(a[w].worstMargin, b[w].worstMargin);
    }

    // Different seed: the noise draws differ, so the noise-facing
    // telemetry (worst margin, CPM readings) must differ somewhere
    // (sanity that we are not comparing constants). The *analog* means
    // can legitimately coincide here because the biased controller pins
    // both the setpoint (at the undervolt ceiling) and the DPLLs (at
    // target).
    const auto c = telemetryOf(99999);
    ASSERT_EQ(a.size(), c.size());
    bool anyDifference = false;
    for (size_t w = 0; w < a.size() && !anyDifference; ++w) {
        anyDifference = a[w].worstMargin != c[w].worstMargin ||
                        a[w].sampleCpm != c[w].sampleCpm ||
                        a[w].stickyCpm != c[w].stickyCpm;
    }
    EXPECT_TRUE(anyDifference);
}

TEST(FaultChipIntegration, FirmwareStallFreezesDecisions)
{
    FaultPlan plan;
    plan.firmwareStall(Seconds{0.1}, Seconds{0.4});
    FaultRun rig(plan, GuardbandMode::AdaptiveUndervolt);
    rig.run(Seconds{0.6});
    // ~0.4 s of stall at a 32 ms cadence: about 12 missed ticks.
    EXPECT_GE(rig.chip->missedFirmwareTicks(), 10);
    EXPECT_LE(rig.chip->missedFirmwareTicks(), 14);
}

TEST(FaultChipIntegration, DetachClearsInjectedState)
{
    FaultPlan plan;
    plan.cpmDropout(Seconds{0.0}, Seconds{0.0}).vrmDacStuck(Seconds{0.0});
    FaultRun rig(plan, GuardbandMode::AdaptiveUndervolt);
    rig.run(Seconds{0.2});

    rig.chip->attachFaultInjector(nullptr);
    EXPECT_EQ(rig.chip->faultInjector(), nullptr);
    EXPECT_FALSE(rig.vrm.dacStuck(0));
    // Loop recovers on its own once the sensors tell the truth again.
    rig.chip->settle(Seconds{1.0});
    EXPECT_EQ(rig.chip->lastStepEmergencies(), 0);
}

TEST(FaultChipIntegration, AttachRejectsCoreCountMismatch)
{
    pdn::Vrm vrm(1);
    Chip chip(ChipConfig(), &vrm);
    FaultInjector injector(FaultPlan(), chip.coreCount() + 1);
    EXPECT_THROW(chip.attachFaultInjector(&injector), ConfigError);
}

} // namespace
} // namespace agsim::fault
