/**
 * @file
 * FleetService tests: the continuous service must be a pure function
 * of (config, seeds) — bit-identical digests for threads=1 vs
 * threads=N work-stealing execution and for telemetry on vs off — and
 * its online control must actually control: admission sheds under
 * overload, placements track rate shifts, failed servers drain and
 * migrate their backlogs, and the scripted flash crowd drives an SLO
 * alert through a full fire/resolve cycle.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "fault/fault_plan.h"
#include "obs/telemetry/telemetry_hub.h"
#include "system/fleet_service.h"

namespace agsim::system {
namespace {

using obs::telemetry::TelemetryConfig;
using obs::telemetry::TelemetryHub;

/** Small but heterogeneous service config the tests share. */
FleetServiceConfig
baseConfig()
{
    FleetServiceConfig config;
    config.serverCount = 4;
    config.seed = 0xD15EA5Eu;
    config.settleDuration = Seconds{0.02};
    config.tickDt = Seconds{1e-3};
    config.ticksPerQuantum = 10;
    config.arrivals.kind = workload::ArrivalKind::Steady;
    // 4 servers x 2 sockets x 8 cores x 500 q/s = 32k q/s capacity;
    // offer a comfortable fraction of it.
    config.arrivals.baseRatePerSec = 8000.0;
    return config;
}

TEST(FleetService, ExactModeBitIdenticalAcrossThreadCounts)
{
    uint64_t serialDigest = 0;
    uint64_t stolenDigest = 0;
    {
        FleetServiceConfig config = baseConfig();
        config.stepper.threads = 1;
        FleetService service(config);
        service.start();
        service.runFor(Seconds{0.3});
        serialDigest = service.stateDigest();
        EXPECT_GT(service.stats().completed, 0u);
    }
    {
        FleetServiceConfig config = baseConfig();
        config.stepper.threads = 4;
        config.stepper.stealing = true;
        config.stepper.shardSize = 2; // force several tasks per sweep
        FleetService service(config);
        service.start();
        service.runFor(Seconds{0.3});
        stolenDigest = service.stateDigest();
    }
    EXPECT_EQ(serialDigest, stolenDigest);
}

TEST(FleetService, DigestUnaffectedByTelemetry)
{
    uint64_t darkDigest = 0;
    uint64_t litDigest = 0;
    {
        FleetService service(baseConfig());
        service.start();
        service.runFor(Seconds{0.2});
        darkDigest = service.stateDigest();
    }
    {
        TelemetryConfig tc;
        tc.enabled = true;
        tc.sampleInterval = Seconds{0.01};
        TelemetryHub hub(tc);
        FleetService service(baseConfig());
        service.setTelemetry(&hub);
        service.installDefaultSlos();
        service.start();
        service.runFor(Seconds{0.2});
        litDigest = service.stateDigest();
        EXPECT_GT(hub.merged("service.throughput").buckets.size(), 0u);
    }
    EXPECT_EQ(darkDigest, litDigest);
}

TEST(FleetService, SustainsSteadyLoad)
{
    FleetService service(baseConfig());
    service.start();
    service.runFor(Seconds{0.5});
    EXPECT_GT(service.stats().arrived, 0u);
    // Provisioned at ~25% of capacity: virtually everything completes.
    EXPECT_GE(service.sustainedFraction(), 0.9);
    EXPECT_EQ(service.stats().shed, 0u);
}

TEST(FleetService, AdmissionControlShedsUnderOverload)
{
    FleetServiceConfig config = baseConfig();
    config.arrivals.baseRatePerSec = 200000.0; // ~6x capacity
    config.queue.maxDepth = 256;
    FleetService service(config);
    service.start();
    service.runFor(Seconds{0.3});
    EXPECT_GT(service.stats().shed, 0u);
    // The admission cap bounds every backlog.
    EXPECT_LE(service.queueDepth(),
              uint64_t(config.serverCount) * config.queue.maxDepth);
}

TEST(FleetService, PlacementTracksRateShift)
{
    FleetServiceConfig config = baseConfig();
    config.arrivals.kind = workload::ArrivalKind::FlashCrowd;
    config.arrivals.baseRatePerSec = 3000.0;
    config.arrivals.flashStart = Seconds{0.1};
    config.arrivals.flashRise = Seconds{0.1};
    config.arrivals.flashHold = Seconds{0.3};
    config.arrivals.flashDecay = Seconds{0.1};
    config.arrivals.flashMultiplier = 8.0;
    FleetService service(config);
    service.start();
    const size_t placedAtStart = service.placedThreads();
    size_t placedPeak = placedAtStart;
    for (int k = 0; k < 40; ++k) {
        service.tick();
        placedPeak = std::max(placedPeak, service.placedThreads());
    }
    EXPECT_GT(placedPeak, placedAtStart);
    EXPECT_GT(service.stats().placements, 1);
}

TEST(FleetService, DrainAndMigrateOnServerCrash)
{
    FleetServiceConfig config = baseConfig();
    // Offer above fleet capacity so a standing backlog exists on
    // every server when the crash lands.
    config.arrivals.baseRatePerSec = 40000.0;
    fault::FaultPlan plan;
    plan.serverCrash(Seconds{0.05}, Seconds{0.08});
    FleetService service(config);
    service.setFaultPlan(0, plan);
    service.start();
    service.runFor(Seconds{0.4});
    EXPECT_GE(service.manager().failures(), 1);
    // The crashed server's backlog moved to survivors instead of
    // stalling until recovery.
    EXPECT_GT(service.stats().migratedQueries, 0u);
    EXPECT_GE(service.sustainedFraction(), 0.5);
}

TEST(FleetService, FlashCrowdFiresAndResolvesSlo)
{
    TelemetryConfig tc;
    tc.enabled = true;
    tc.sampleInterval = Seconds{0.01};
    TelemetryHub hub(tc);

    FleetServiceConfig config = baseConfig();
    config.arrivals.kind = workload::ArrivalKind::FlashCrowd;
    config.arrivals.baseRatePerSec = 8000.0;
    config.arrivals.flashStart = Seconds{0.5};
    config.arrivals.flashRise = Seconds{0.2};
    config.arrivals.flashHold = Seconds{1.0};
    config.arrivals.flashDecay = Seconds{0.3};
    config.arrivals.flashMultiplier = 5.0; // peak 40k > 32k capacity
    config.queue.maxDepth = 2048;

    FleetService service(config);
    service.setTelemetry(&hub);
    service.installDefaultSlos(Seconds{0.050});
    service.start();
    service.runFor(Seconds{4.0});

    EXPECT_GE(hub.slo().totalFires(), 1u);
    EXPECT_EQ(hub.slo().activeCount(), 0u)
        << "alerts must resolve once the flash crowd decays";
    // The crowd was absorbed: most of the offered load still completed.
    EXPECT_GE(service.sustainedFraction(), 0.9);
}

TEST(FleetService, ValidationRejectsNonsense)
{
    FleetServiceConfig config;
    config.serverCount = 0;
    EXPECT_THROW(FleetService{config}, ConfigError);
    config = FleetServiceConfig();
    config.ticksPerQuantum = 0;
    EXPECT_THROW(FleetService{config}, ConfigError);
    config = FleetServiceConfig();
    config.targetUtilization = 0.0;
    EXPECT_THROW(FleetService{config}, ConfigError);
    config = FleetServiceConfig();
    config.rateEwmaAlpha = 2.0;
    EXPECT_THROW(FleetService{config}, ConfigError);
}

TEST(FleetService, LifecycleGuards)
{
    FleetService service(baseConfig());
    EXPECT_THROW(service.tick(), ConfigError);
    service.start();
    service.start(); // idempotent
    TelemetryConfig tc;
    TelemetryHub hub(tc);
    EXPECT_THROW(service.setTelemetry(&hub), ConfigError);
}

} // namespace
} // namespace agsim::system
