/**
 * @file
 * FleetStepper tests: the exact shard sweep (serial, threaded,
 * tick-synchronous) must be bit-identical to stepping every chip
 * serially, and phase-sampled fast-forward must stay within the
 * divergence bounds documented in docs/PERFORMANCE.md.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "chip/chip.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "pdn/vrm.h"
#include "system/fleet_stepper.h"

namespace agsim::system {
namespace {

using namespace agsim::units;

constexpr size_t kChips = 8;
constexpr Seconds kDt{1e-3};

/**
 * Documented divergence bounds for sampled stepping (keep in sync with
 * docs/PERFORMANCE.md). Margin: mean telemetry-window worst margin.
 * MIPS proxy: mean active-core frequency integrated over windows.
 */
constexpr Volts kMarginEpsilon{10e-3};
constexpr double kMipsEpsilon = 0.01;
constexpr double kPowerEpsilon = 0.03;

/**
 * One self-contained fleet: a many-rail VRM plus one chip per rail,
 * with varied per-chip personas (seed, mode, active core count) so the
 * sweep sees heterogeneous work.
 */
struct Fleet
{
    explicit Fleet(size_t count = kChips)
        : vrm(count)
    {
        for (size_t i = 0; i < count; ++i) {
            chip::ChipConfig config;
            config.railIndex = i;
            config.seed = 0xF1EE7ull + 0x9E3779B97F4A7C15ull * i;
            config.mode = i % 2 == 0
                              ? chip::GuardbandMode::AdaptiveUndervolt
                              : chip::GuardbandMode::StaticGuardband;
            auto c = std::make_unique<chip::Chip>(config, &vrm);
            const size_t active = 2 + i % 7;
            for (size_t core = 0; core < active; ++core) {
                c->setLoad(core, chip::CoreLoad::running(1.0, 13.0_mV,
                                                         24.0_mV));
            }
            chips.push_back(std::move(c));
        }
    }

    void
    stepSerial(int64_t ticks)
    {
        for (int64_t t = 0; t < ticks; ++t) {
            for (auto &c : chips)
                c->step(kDt);
        }
    }

    void
    settle(Seconds duration = Seconds{1.5})
    {
        for (auto &c : chips)
            c->settle(duration, kDt);
        for (auto &c : chips)
            c->telemetry().clearWindows();
    }

    pdn::Vrm vrm;
    std::vector<std::unique_ptr<chip::Chip>> chips;
};

/** Every externally visible hot observable, compared exactly. */
void
expectBitIdentical(const Fleet &a, const Fleet &b)
{
    ASSERT_EQ(a.chips.size(), b.chips.size());
    for (size_t i = 0; i < a.chips.size(); ++i) {
        const chip::Chip &x = *a.chips[i];
        const chip::Chip &y = *b.chips[i];
        EXPECT_EQ(x.power().value(), y.power().value()) << "chip " << i;
        EXPECT_EQ(x.railCurrent().value(), y.railCurrent().value());
        EXPECT_EQ(x.setpoint().value(), y.setpoint().value());
        EXPECT_EQ(x.simTime().value(), y.simTime().value());
        EXPECT_EQ(x.sinceFirmware().value(), y.sinceFirmware().value());
        EXPECT_EQ(x.lastWorstMargin().value(),
                  y.lastWorstMargin().value());
        EXPECT_EQ(x.temperature().value(), y.temperature().value());
        for (size_t core = 0; core < x.coreCount(); ++core) {
            EXPECT_EQ(x.coreVoltage(core).value(),
                      y.coreVoltage(core).value())
                << "chip " << i << " core " << core;
            EXPECT_EQ(x.coreFrequency(core).value(),
                      y.coreFrequency(core).value());
        }
        ASSERT_EQ(x.telemetry().windows().size(),
                  y.telemetry().windows().size());
        if (x.telemetry().hasWindows()) {
            EXPECT_EQ(x.telemetry().latest().meanChipPower.value(),
                      y.telemetry().latest().meanChipPower.value());
            EXPECT_EQ(x.telemetry().latest().worstMargin.value(),
                      y.telemetry().latest().worstMargin.value());
        }
    }
}

/** Mean of each window's worst margin over a chip's telemetry. */
double
meanWindowWorstMargin(const chip::Chip &c)
{
    const auto &windows = c.telemetry().windows();
    double sum = 0.0;
    for (const auto &w : windows)
        sum += w.worstMargin.value();
    return windows.empty() ? 0.0 : sum / double(windows.size());
}

/** MIPS proxy: mean active-core frequency across a chip's windows. */
double
meanActiveFrequency(const chip::Chip &c)
{
    double sum = 0.0;
    size_t count = 0;
    for (const auto &w : c.telemetry().windows()) {
        for (const Hertz f : w.meanCoreFrequency) {
            if (f > Hertz{0.0}) {
                sum += f.value();
                ++count;
            }
        }
    }
    return count == 0 ? 0.0 : sum / double(count);
}

/** Mean chip power across a chip's windows. */
double
meanWindowPower(const chip::Chip &c)
{
    const auto &windows = c.telemetry().windows();
    double sum = 0.0;
    for (const auto &w : windows)
        sum += w.meanChipPower.value();
    return windows.empty() ? 0.0 : sum / double(windows.size());
}

TEST(FleetStepperExact, ShardSweepIsBitIdenticalToSerialStepping)
{
    Fleet serial;
    Fleet fleet;

    FleetStepperConfig config;
    config.sampling = false;
    config.tickBlock = 64;
    FleetStepper stepper(config);
    for (auto &c : fleet.chips)
        stepper.addChip(c.get());

    // 400 ticks spans several firmware decisions and telemetry windows,
    // and the tick count is deliberately not a tickBlock multiple.
    serial.stepSerial(400);
    stepper.run(400, kDt);

    EXPECT_EQ(stepper.exactSteps(), 400 * int64_t(kChips));
    EXPECT_EQ(stepper.fastForwardedTicks(), 0);
    expectBitIdentical(serial, fleet);
}

TEST(FleetStepperExact, ThreadedSweepIsBitIdenticalToSerialStepping)
{
    Fleet serial;
    Fleet fleet;

    FleetStepperConfig config;
    config.sampling = false;
    config.threads = 2;
    FleetStepper stepper(config);
    for (auto &c : fleet.chips)
        stepper.addChip(c.get());

    serial.stepSerial(300);
    stepper.run(300, kDt);

    expectBitIdentical(serial, fleet);
}

TEST(FleetStepperExact, TickSynchronousStepMatchesChipStep)
{
    Fleet serial;
    Fleet fleet;

    FleetStepper stepper;
    for (auto &c : fleet.chips)
        stepper.addChip(c.get());

    for (int64_t t = 0; t < 200; ++t) {
        for (auto &c : serial.chips)
            c->step(kDt);
        stepper.step(kDt);
    }

    expectBitIdentical(serial, fleet);
}

TEST(FleetStepperExact, PhaseSplitEqualsMonolithicStep)
{
    Fleet whole(2);
    Fleet split(2);

    for (int64_t t = 0; t < 500; ++t) {
        for (auto &c : whole.chips)
            c->step(kDt);
        for (auto &c : split.chips) {
            c->stepSensePhase(kDt);
            c->stepControlPhase(kDt);
            c->stepCommitPhase(kDt);
        }
    }

    expectBitIdentical(whole, split);
}

TEST(FleetStepperSampled, SteadyFleetStaysWithinDocumentedBounds)
{
    Fleet exact;
    Fleet sampled;
    exact.settle();
    sampled.settle();

    FleetStepperConfig config;
    config.sampling = true;
    FleetStepper stepper(config);
    for (auto &c : sampled.chips)
        stepper.addChip(c.get());

    const int64_t ticks = 3000;
    exact.stepSerial(ticks);
    stepper.run(ticks, kDt);

    // Sampling must actually engage on a settled fleet: the majority of
    // ticks are fast-forwarded, and the re-anchor cadence bounds how
    // many ticks any one span covers without an exact re-solve.
    EXPECT_GT(stepper.fastForwardedTicks(),
              ticks * int64_t(kChips) / 2);
    EXPECT_GE(stepper.exactSteps(),
              stepper.fastForwardedTicks() /
                  config.detector.maxFastForwardTicks);

    for (size_t i = 0; i < kChips; ++i) {
        const chip::Chip &e = *exact.chips[i];
        const chip::Chip &s = *sampled.chips[i];
        // Simulated time agrees to accumulation rounding (the span
        // clock adds dt*k chunks, the exact clock adds dt k times).
        EXPECT_NEAR(e.simTime().value(), s.simTime().value(), 1e-9);
        ASSERT_EQ(e.telemetry().windows().size(),
                  s.telemetry().windows().size());
        EXPECT_NEAR(meanWindowWorstMargin(e), meanWindowWorstMargin(s),
                    kMarginEpsilon.value())
            << "chip " << i;
        const double fExact = meanActiveFrequency(e);
        const double fSampled = meanActiveFrequency(s);
        EXPECT_NEAR(fSampled, fExact, kMipsEpsilon * fExact)
            << "chip " << i;
        const double pExact = meanWindowPower(e);
        EXPECT_NEAR(meanWindowPower(s), pExact, kPowerEpsilon * pExact)
            << "chip " << i;
    }
}

TEST(FleetStepperSampled, RidesThroughFaultAndDroopStorms)
{
    Fleet exact;
    Fleet sampled;

    // Staggered rate-only droop storms on every chip plus a firmware
    // stall on one: the detector must drop to exact stepping around
    // every plan edge (forwardBudget never skips across one) and
    // re-arm in the quiet gaps.
    auto makePlan = [](size_t i) {
        fault::FaultPlan plan;
        fault::FaultSpec storm;
        storm.kind = fault::FaultKind::DroopStorm;
        storm.start = Seconds{0.2 + 0.1 * double(i)};
        storm.duration = Seconds{0.3};
        storm.magnitude = 6.0;
        plan.add(storm);
        if (i == 0) {
            fault::FaultSpec stall;
            stall.kind = fault::FaultKind::FirmwareStall;
            stall.start = Seconds{1.2};
            stall.duration = Seconds{0.2};
            plan.add(stall);
        }
        return plan;
    };
    std::vector<std::unique_ptr<fault::FaultInjector>> exactInjectors;
    std::vector<std::unique_ptr<fault::FaultInjector>> sampledInjectors;
    for (size_t i = 0; i < kChips; ++i) {
        exactInjectors.push_back(std::make_unique<fault::FaultInjector>(
            makePlan(i), exact.chips[i]->coreCount()));
        sampledInjectors.push_back(
            std::make_unique<fault::FaultInjector>(
                makePlan(i), sampled.chips[i]->coreCount()));
        exact.chips[i]->attachFaultInjector(exactInjectors[i].get());
        sampled.chips[i]->attachFaultInjector(sampledInjectors[i].get());
    }

    FleetStepperConfig config;
    config.sampling = true;
    FleetStepper stepper(config);
    for (auto &c : sampled.chips)
        stepper.addChip(c.get());

    const int64_t ticks = 2000;
    exact.stepSerial(ticks);
    stepper.run(ticks, kDt);

    // Storms force exact stepping while active, quiet gaps fast-forward.
    EXPECT_GT(stepper.fastForwardedTicks(), 0);
    EXPECT_GT(stepper.exactSteps(),
              int64_t(config.detector.window) * int64_t(kChips));

    for (size_t i = 0; i < kChips; ++i) {
        const chip::Chip &e = *exact.chips[i];
        const chip::Chip &s = *sampled.chips[i];
        EXPECT_NEAR(e.simTime().value(), s.simTime().value(), 1e-9);
        ASSERT_EQ(e.telemetry().windows().size(),
                  s.telemetry().windows().size());
        EXPECT_NEAR(meanWindowWorstMargin(e), meanWindowWorstMargin(s),
                    kMarginEpsilon.value())
            << "chip " << i;
        const double fExact = meanActiveFrequency(e);
        EXPECT_NEAR(meanActiveFrequency(s), fExact,
                    kMipsEpsilon * fExact)
            << "chip " << i;
        // No sampled-mode safety surprises: neither run demotes (the
        // storms stay within the characterized depth envelope).
        EXPECT_EQ(e.totalDemotions(), 0) << "chip " << i;
        EXPECT_EQ(s.totalDemotions(), 0) << "chip " << i;
    }
}

TEST(FleetStepperSampled, DisarmsOnExternalControlChanges)
{
    Fleet fleet;
    fleet.settle();

    FleetStepperConfig config;
    config.sampling = true;
    FleetStepper stepper(config);
    for (auto &c : fleet.chips)
        stepper.addChip(c.get());

    stepper.run(1000, kDt);
    const int64_t forwardedBefore = stepper.fastForwardedTicks();
    EXPECT_GT(forwardedBefore, 0);

    // A load change bumps the chip's state epoch; the very next sweep
    // must re-run the exact path for at least a full detector window.
    fleet.chips[0]->setLoad(7, chip::CoreLoad::running(0.5, 13.0_mV,
                                                       24.0_mV));
    const int64_t exactBefore = stepper.exactSteps();
    stepper.run(int64_t(config.detector.window), kDt);
    const int64_t exactDelta = stepper.exactSteps() - exactBefore;
    EXPECT_GE(exactDelta, int64_t(config.detector.window));
}

} // namespace
} // namespace agsim::system
