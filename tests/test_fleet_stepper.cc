/**
 * @file
 * FleetStepper tests: the exact shard sweep (serial, threaded,
 * tick-synchronous) must be bit-identical to stepping every chip
 * serially, and phase-sampled fast-forward must stay within the
 * divergence bounds documented in docs/PERFORMANCE.md.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "chip/chip.h"
#include "chip/chip_checkpoint.h"
#include "common/error.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "pdn/vrm.h"
#include "system/fleet_stepper.h"

namespace agsim::system {
namespace {

using namespace agsim::units;

constexpr size_t kChips = 8;
constexpr Seconds kDt{1e-3};

/**
 * Documented divergence bounds for sampled stepping (keep in sync with
 * docs/PERFORMANCE.md). Margin: mean telemetry-window worst margin.
 * MIPS proxy: mean active-core frequency integrated over windows.
 */
constexpr Volts kMarginEpsilon{10e-3};
constexpr double kMipsEpsilon = 0.01;
constexpr double kPowerEpsilon = 0.03;

/**
 * One self-contained fleet: a many-rail VRM plus one chip per rail,
 * with varied per-chip personas (seed, mode, active core count) so the
 * sweep sees heterogeneous work.
 */
struct Fleet
{
    explicit Fleet(size_t count = kChips)
        : vrm(count)
    {
        for (size_t i = 0; i < count; ++i) {
            chip::ChipConfig config;
            config.railIndex = i;
            config.seed = 0xF1EE7ull + 0x9E3779B97F4A7C15ull * i;
            config.mode = i % 2 == 0
                              ? chip::GuardbandMode::AdaptiveUndervolt
                              : chip::GuardbandMode::StaticGuardband;
            auto c = std::make_unique<chip::Chip>(config, &vrm);
            const size_t active = 2 + i % 7;
            for (size_t core = 0; core < active; ++core) {
                c->setLoad(core, chip::CoreLoad::running(1.0, 13.0_mV,
                                                         24.0_mV));
            }
            chips.push_back(std::move(c));
        }
    }

    void
    stepSerial(int64_t ticks)
    {
        for (int64_t t = 0; t < ticks; ++t) {
            for (auto &c : chips)
                c->step(kDt);
        }
    }

    void
    settle(Seconds duration = Seconds{1.5})
    {
        for (auto &c : chips)
            c->settle(duration, kDt);
        for (auto &c : chips)
            c->telemetry().clearWindows();
    }

    pdn::Vrm vrm;
    std::vector<std::unique_ptr<chip::Chip>> chips;
};

/** Every externally visible hot observable, compared exactly. */
void
expectBitIdentical(const Fleet &a, const Fleet &b)
{
    ASSERT_EQ(a.chips.size(), b.chips.size());
    for (size_t i = 0; i < a.chips.size(); ++i) {
        const chip::Chip &x = *a.chips[i];
        const chip::Chip &y = *b.chips[i];
        EXPECT_EQ(x.power().value(), y.power().value()) << "chip " << i;
        EXPECT_EQ(x.railCurrent().value(), y.railCurrent().value());
        EXPECT_EQ(x.setpoint().value(), y.setpoint().value());
        EXPECT_EQ(x.simTime().value(), y.simTime().value());
        EXPECT_EQ(x.sinceFirmware().value(), y.sinceFirmware().value());
        EXPECT_EQ(x.lastWorstMargin().value(),
                  y.lastWorstMargin().value());
        EXPECT_EQ(x.temperature().value(), y.temperature().value());
        for (size_t core = 0; core < x.coreCount(); ++core) {
            EXPECT_EQ(x.coreVoltage(core).value(),
                      y.coreVoltage(core).value())
                << "chip " << i << " core " << core;
            EXPECT_EQ(x.coreFrequency(core).value(),
                      y.coreFrequency(core).value());
        }
        ASSERT_EQ(x.telemetry().windows().size(),
                  y.telemetry().windows().size());
        if (x.telemetry().hasWindows()) {
            EXPECT_EQ(x.telemetry().latest().meanChipPower.value(),
                      y.telemetry().latest().meanChipPower.value());
            EXPECT_EQ(x.telemetry().latest().worstMargin.value(),
                      y.telemetry().latest().worstMargin.value());
        }
    }
}

/** Mean of each window's worst margin over a chip's telemetry. */
double
meanWindowWorstMargin(const chip::Chip &c)
{
    const auto &windows = c.telemetry().windows();
    double sum = 0.0;
    for (const auto &w : windows)
        sum += w.worstMargin.value();
    return windows.empty() ? 0.0 : sum / double(windows.size());
}

/** MIPS proxy: mean active-core frequency across a chip's windows. */
double
meanActiveFrequency(const chip::Chip &c)
{
    double sum = 0.0;
    size_t count = 0;
    for (const auto &w : c.telemetry().windows()) {
        for (const Hertz f : w.meanCoreFrequency) {
            if (f > Hertz{0.0}) {
                sum += f.value();
                ++count;
            }
        }
    }
    return count == 0 ? 0.0 : sum / double(count);
}

/** Mean chip power across a chip's windows. */
double
meanWindowPower(const chip::Chip &c)
{
    const auto &windows = c.telemetry().windows();
    double sum = 0.0;
    for (const auto &w : windows)
        sum += w.meanChipPower.value();
    return windows.empty() ? 0.0 : sum / double(windows.size());
}

TEST(FleetStepperExact, ShardSweepIsBitIdenticalToSerialStepping)
{
    Fleet serial;
    Fleet fleet;

    FleetStepperConfig config;
    config.sampling = false;
    config.tickBlock = 64;
    FleetStepper stepper(config);
    for (auto &c : fleet.chips)
        stepper.addChip(c.get());

    // 400 ticks spans several firmware decisions and telemetry windows,
    // and the tick count is deliberately not a tickBlock multiple.
    serial.stepSerial(400);
    stepper.run(400, kDt);

    EXPECT_EQ(stepper.exactSteps(), 400 * int64_t(kChips));
    EXPECT_EQ(stepper.fastForwardedTicks(), 0);
    expectBitIdentical(serial, fleet);
}

TEST(FleetStepperExact, ThreadedSweepIsBitIdenticalToSerialStepping)
{
    Fleet serial;
    Fleet fleet;

    FleetStepperConfig config;
    config.sampling = false;
    config.threads = 2;
    FleetStepper stepper(config);
    for (auto &c : fleet.chips)
        stepper.addChip(c.get());

    serial.stepSerial(300);
    stepper.run(300, kDt);

    expectBitIdentical(serial, fleet);
}

TEST(FleetStepperExact, TickSynchronousStepMatchesChipStep)
{
    Fleet serial;
    Fleet fleet;

    FleetStepper stepper;
    for (auto &c : fleet.chips)
        stepper.addChip(c.get());

    for (int64_t t = 0; t < 200; ++t) {
        for (auto &c : serial.chips)
            c->step(kDt);
        stepper.step(kDt);
    }

    expectBitIdentical(serial, fleet);
}

TEST(FleetStepperExact, PhaseSplitEqualsMonolithicStep)
{
    Fleet whole(2);
    Fleet split(2);

    for (int64_t t = 0; t < 500; ++t) {
        for (auto &c : whole.chips)
            c->step(kDt);
        for (auto &c : split.chips) {
            c->stepSensePhase(kDt);
            c->stepControlPhase(kDt);
            c->stepCommitPhase(kDt);
        }
    }

    expectBitIdentical(whole, split);
}

TEST(FleetStepperSampled, SteadyFleetStaysWithinDocumentedBounds)
{
    Fleet exact;
    Fleet sampled;
    exact.settle();
    sampled.settle();

    FleetStepperConfig config;
    config.sampling = true;
    FleetStepper stepper(config);
    for (auto &c : sampled.chips)
        stepper.addChip(c.get());

    const int64_t ticks = 3000;
    exact.stepSerial(ticks);
    stepper.run(ticks, kDt);

    // Sampling must actually engage on a settled fleet: the majority of
    // ticks are fast-forwarded, and the re-anchor cadence bounds how
    // many ticks any one span covers without an exact re-solve.
    EXPECT_GT(stepper.fastForwardedTicks(),
              ticks * int64_t(kChips) / 2);
    EXPECT_GE(stepper.exactSteps(),
              stepper.fastForwardedTicks() /
                  config.detector.maxFastForwardTicks);

    for (size_t i = 0; i < kChips; ++i) {
        const chip::Chip &e = *exact.chips[i];
        const chip::Chip &s = *sampled.chips[i];
        // Simulated time agrees to accumulation rounding (the span
        // clock adds dt*k chunks, the exact clock adds dt k times).
        EXPECT_NEAR(e.simTime().value(), s.simTime().value(), 1e-9);
        ASSERT_EQ(e.telemetry().windows().size(),
                  s.telemetry().windows().size());
        EXPECT_NEAR(meanWindowWorstMargin(e), meanWindowWorstMargin(s),
                    kMarginEpsilon.value())
            << "chip " << i;
        const double fExact = meanActiveFrequency(e);
        const double fSampled = meanActiveFrequency(s);
        EXPECT_NEAR(fSampled, fExact, kMipsEpsilon * fExact)
            << "chip " << i;
        const double pExact = meanWindowPower(e);
        EXPECT_NEAR(meanWindowPower(s), pExact, kPowerEpsilon * pExact)
            << "chip " << i;
    }
}

TEST(FleetStepperSampled, RidesThroughFaultAndDroopStorms)
{
    Fleet exact;
    Fleet sampled;

    // Staggered rate-only droop storms on every chip plus a firmware
    // stall on one: the detector must drop to exact stepping around
    // every plan edge (forwardBudget never skips across one) and
    // re-arm in the quiet gaps.
    auto makePlan = [](size_t i) {
        fault::FaultPlan plan;
        fault::FaultSpec storm;
        storm.kind = fault::FaultKind::DroopStorm;
        storm.start = Seconds{0.2 + 0.1 * double(i)};
        storm.duration = Seconds{0.3};
        storm.magnitude = 6.0;
        plan.add(storm);
        if (i == 0) {
            fault::FaultSpec stall;
            stall.kind = fault::FaultKind::FirmwareStall;
            stall.start = Seconds{1.2};
            stall.duration = Seconds{0.2};
            plan.add(stall);
        }
        return plan;
    };
    std::vector<std::unique_ptr<fault::FaultInjector>> exactInjectors;
    std::vector<std::unique_ptr<fault::FaultInjector>> sampledInjectors;
    for (size_t i = 0; i < kChips; ++i) {
        exactInjectors.push_back(std::make_unique<fault::FaultInjector>(
            makePlan(i), exact.chips[i]->coreCount()));
        sampledInjectors.push_back(
            std::make_unique<fault::FaultInjector>(
                makePlan(i), sampled.chips[i]->coreCount()));
        exact.chips[i]->attachFaultInjector(exactInjectors[i].get());
        sampled.chips[i]->attachFaultInjector(sampledInjectors[i].get());
    }

    FleetStepperConfig config;
    config.sampling = true;
    FleetStepper stepper(config);
    for (auto &c : sampled.chips)
        stepper.addChip(c.get());

    const int64_t ticks = 2000;
    exact.stepSerial(ticks);
    stepper.run(ticks, kDt);

    // Storms force exact stepping while active, quiet gaps fast-forward.
    EXPECT_GT(stepper.fastForwardedTicks(), 0);
    EXPECT_GT(stepper.exactSteps(),
              int64_t(config.detector.window) * int64_t(kChips));

    for (size_t i = 0; i < kChips; ++i) {
        const chip::Chip &e = *exact.chips[i];
        const chip::Chip &s = *sampled.chips[i];
        EXPECT_NEAR(e.simTime().value(), s.simTime().value(), 1e-9);
        ASSERT_EQ(e.telemetry().windows().size(),
                  s.telemetry().windows().size());
        EXPECT_NEAR(meanWindowWorstMargin(e), meanWindowWorstMargin(s),
                    kMarginEpsilon.value())
            << "chip " << i;
        const double fExact = meanActiveFrequency(e);
        EXPECT_NEAR(meanActiveFrequency(s), fExact,
                    kMipsEpsilon * fExact)
            << "chip " << i;
        // No sampled-mode safety surprises: neither run demotes (the
        // storms stay within the characterized depth envelope).
        EXPECT_EQ(e.totalDemotions(), 0) << "chip " << i;
        EXPECT_EQ(s.totalDemotions(), 0) << "chip " << i;
    }
}

TEST(FleetStepperSampled, DisarmsOnExternalControlChanges)
{
    Fleet fleet;
    fleet.settle();

    FleetStepperConfig config;
    config.sampling = true;
    FleetStepper stepper(config);
    for (auto &c : fleet.chips)
        stepper.addChip(c.get());

    stepper.run(1000, kDt);
    const int64_t forwardedBefore = stepper.fastForwardedTicks();
    EXPECT_GT(forwardedBefore, 0);

    // A load change bumps the chip's state epoch; the very next sweep
    // must re-run the exact path for at least a full detector window.
    fleet.chips[0]->setLoad(7, chip::CoreLoad::running(0.5, 13.0_mV,
                                                       24.0_mV));
    const int64_t exactBefore = stepper.exactSteps();
    stepper.run(int64_t(config.detector.window), kDt);
    const int64_t exactDelta = stepper.exactSteps() - exactBefore;
    EXPECT_GE(exactDelta, int64_t(config.detector.window));
}

TEST(FleetStepperExact, InactiveChipsAreSkippedAndResyncOnReactivation)
{
    Fleet serial;
    Fleet fleet;

    FleetStepperConfig config;
    config.sampling = false;
    FleetStepper stepper(config);
    std::vector<size_t> indices;
    for (auto &c : fleet.chips)
        indices.push_back(stepper.addChip(c.get()));
    EXPECT_EQ(indices.front(), 0u);
    EXPECT_EQ(indices.back(), kChips - 1);

    serial.stepSerial(100);
    stepper.run(100, kDt);

    // Freeze chip 0 (a crashed server's socket): it makes no progress
    // and its sim clock stops; everyone else keeps stepping.
    EXPECT_TRUE(stepper.chipActive(0));
    stepper.setChipActive(0, false);
    EXPECT_FALSE(stepper.chipActive(0));
    const Seconds frozenAt = fleet.chips[0]->simTime();
    for (int64_t t = 0; t < 80; ++t) {
        for (size_t i = 1; i < kChips; ++i)
            serial.chips[i]->step(kDt);
    }
    stepper.run(80, kDt);
    EXPECT_EQ(fleet.chips[0]->simTime().value(), frozenAt.value());

    // Reactivate and continue: bit-identical to the serial reference
    // that skipped the same ticks.
    stepper.setChipActive(0, true);
    for (int64_t t = 0; t < 50; ++t) {
        for (auto &c : serial.chips)
            c->step(kDt);
    }
    stepper.run(50, kDt);
    expectBitIdentical(serial, fleet);

    EXPECT_THROW(stepper.setChipActive(kChips, true), ConfigError);
    EXPECT_THROW((void)stepper.chipActive(kChips), ConfigError);
}

TEST(FleetStepperExact, TickSynchronousStepSkipsInactiveChips)
{
    Fleet fleet(2);
    FleetStepper stepper;
    stepper.addChip(fleet.chips[0].get());
    stepper.addChip(fleet.chips[1].get());
    stepper.setChipActive(1, false);

    const int64_t exactBefore = stepper.exactSteps();
    for (int64_t t = 0; t < 20; ++t)
        stepper.step(kDt);
    EXPECT_EQ(stepper.exactSteps() - exactBefore, 20);
    EXPECT_EQ(fleet.chips[1]->simTime().value(), 0.0);
    EXPECT_GT(fleet.chips[0]->simTime().value(), 0.0);
}

/**
 * Satellite: a fastForward span that runs into a safety demotion must
 * stop at the demotion edge (consumed < requested) and count the
 * demotion exactly once — the analytic path may never blur a safety
 * action across a span.
 */
TEST(ChipFastForward, SpanBreaksAtSafetyDemotionEdge)
{
    pdn::Vrm vrm(1);
    chip::ChipConfig config;
    config.railIndex = 0;
    config.seed = 0xFA57F0ull;
    config.mode = chip::GuardbandMode::AdaptiveOverclock;
    // Span stepping emits one safety observation per firmware chunk
    // (32 ms), so the budget must be reachable at that cadence inside
    // the 0.25 s window.
    config.safety.emergencyBudget = 4;
    chip::Chip chip(config, &vrm);
    for (size_t i = 0; i < chip.coreCount(); ++i)
        chip.setLoad(i, chip::CoreLoad::running(1.0, 13.0_mV, 24.0_mV));
    chip.settle(Seconds{1.5}, kDt);

    // Storm + fleet-wide CPM dropout: blind cores get assessed against
    // the storm-scaled droop envelope, which reliably produces span
    // emergencies (same recipe as test_run_batch.cc).
    fault::FaultPlan plan;
    plan.droopStorm(Seconds{0.05}, Seconds{0.0}, 30.0, 1.8)
        .cpmDropout(Seconds{0.05}, Seconds{0.0});
    fault::FaultInjector injector(plan, chip.coreCount());
    chip.attachFaultInjector(&injector);

    // Step exactly to the plan edge (fastForward callers must never
    // cross one) so every storm-exposed observation lands inside a
    // fast-forwarded span, then fast-forward until the watchdog
    // demotes the chip.
    for (int64_t t = 0; t < 50; ++t)
        chip.step(kDt);
    ASSERT_FALSE(chip.safetyDemoted());

    // Request spans far longer than the time-to-demotion so the break
    // is unambiguous: the controller's walk-down breaks spans at every
    // setpoint move, and the demoting span must break at the demotion
    // itself rather than coast to the requested length.
    bool sawShortSpan = false;
    for (int guard = 0; guard < 100 && !chip.safetyDemoted(); ++guard) {
        const int64_t consumed = chip.fastForward(5000, kDt);
        ASSERT_GT(consumed, 0);
        ASSERT_LE(consumed, 5000);
        if (chip.safetyDemoted())
            sawShortSpan = consumed < 5000;
    }
    ASSERT_TRUE(chip.safetyDemoted());
    // The demoting span broke early instead of coasting past the edge.
    EXPECT_TRUE(sawShortSpan);
    EXPECT_EQ(chip.mode(), chip::GuardbandMode::StaticGuardband);
    EXPECT_EQ(chip.totalDemotions(), 1);
}

/**
 * Satellite: restoring a checkpoint mid-run bumps the chip's state
 * epoch, which must force an armed phase detector back to exact
 * stepping — the ticks right after a recovery edge are bit-identical
 * to a scalar chip restored from the same checkpoint.
 */
TEST(FleetStepperSampled, RestoreEpochEdgeForcesExactStepping)
{
    Fleet scalar(1);
    Fleet sampled(1);
    scalar.settle();
    sampled.settle();

    FleetStepperConfig config;
    config.sampling = true;
    FleetStepper stepper(config);
    stepper.addChip(sampled.chips[0].get());
    stepper.run(2000, kDt);
    ASSERT_GT(stepper.fastForwardedTicks(), 0);

    // A checkpoint from the (identically configured) scalar chip plays
    // the role of the recovery subsystem's restore-from-checkpoint.
    scalar.stepSerial(500);
    const chip::ChipCheckpoint checkpoint =
        scalar.chips[0]->checkpoint();
    scalar.chips[0]->restoreCheckpoint(checkpoint);
    sampled.chips[0]->restoreCheckpoint(checkpoint);

    // The next 30 ticks sit inside the detector window (32): if the
    // epoch bump disarmed the detector as required, every one of them
    // runs on the exact path and the chips stay bit-identical.
    const int64_t forwardedBefore = stepper.fastForwardedTicks();
    for (int64_t t = 0; t < 30; ++t)
        scalar.chips[0]->step(kDt);
    stepper.run(30, kDt);
    EXPECT_EQ(stepper.fastForwardedTicks(), forwardedBefore);
    expectBitIdentical(scalar, sampled);
}

} // namespace
} // namespace agsim::system
