/**
 * @file
 * Live-telemetry acceptance tests over a managed fleet-recovery
 * scenario (the ISSUE's gates): the availability SLO burn-rate alert
 * fires aligned with a scripted server crash, the flight recorder
 * dump brackets the failure, and the telemetry plane — disabled or
 * fully enabled — never perturbs simulation state (bit-identical
 * chip outcomes).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "obs/observability.h"
#include "obs/telemetry/telemetry_hub.h"
#include "recovery/recovery_manager.h"
#include "system/fleet_stepper.h"
#include "system/server.h"

namespace agsim {
namespace {

constexpr Seconds kDt{1e-3};
constexpr size_t kServers = 3;
constexpr double kCrashAt = 0.3;

system::ServerConfig
serverConfig(size_t index)
{
    system::ServerConfig config;
    config.socketCount = 2;
    config.chipTemplate.mode = chip::GuardbandMode::AdaptiveUndervolt;
    config.chipTemplate.seed =
        0xFEEDull + 0x9E3779B97F4A7C15ull * (index + 1);
    return config;
}

/** Every chip observable that must stay bit-identical. */
std::vector<double>
chipOutcomes(const std::vector<std::unique_ptr<system::Server>> &servers)
{
    std::vector<double> out;
    for (const auto &server : servers) {
        for (size_t s = 0; s < server->socketCount(); ++s) {
            const chip::Chip &chip = server->chip(s);
            out.push_back(chip.simTime().value());
            out.push_back(chip.power().value());
            out.push_back(chip.setpoint().value());
            out.push_back(chip.lastWorstMargin().value());
            for (size_t c = 0; c < chip.coreCount(); ++c)
                out.push_back(chip.coreFrequency(c).value());
        }
    }
    return out;
}

obs::telemetry::SloRule
availabilityRule()
{
    obs::telemetry::SloRule rule;
    rule.name = "fleet.availability";
    rule.series = "recovery.online";
    rule.stat = obs::telemetry::BucketStat::Min;
    rule.threshold = double(kServers) - 0.5;
    rule.violationIsAbove = false;
    rule.budget = 0.05;
    rule.shortWindow = Seconds{0.05};
    rule.longWindow = Seconds{0.25};
    rule.burnRate = 2.0;
    return rule;
}

/**
 * One managed fleet run with a scripted crash at kCrashAt; the hub
 * (nullable) rides along exactly as in bench/ext_fleet_recovery.
 */
std::vector<double>
runStorm(obs::telemetry::TelemetryHub *hub)
{
    std::vector<std::unique_ptr<system::Server>> servers;
    for (size_t i = 0; i < kServers; ++i)
        servers.push_back(
            std::make_unique<system::Server>(serverConfig(i)));

    system::FleetStepper stepper{system::FleetStepperConfig{}};
    recovery::RecoveryManager manager(&stepper,
                                      recovery::RecoveryPolicy{});
    if (hub != nullptr) {
        stepper.setTelemetry(hub);
        manager.setTelemetry(hub);
    }

    std::vector<fault::FaultPlan> plans(kServers);
    plans[1].serverCrash(Seconds{kCrashAt}, Seconds{0.15});
    for (size_t i = 0; i < kServers; ++i)
        manager.addServer(*servers[i],
                          plans[i].empty() ? nullptr : &plans[i]);
    manager.setWorkload(4 * kServers,
                        chip::CoreLoad::running(0.9, Volts{0.013},
                                                Volts{0.024}));

    for (int64_t t = 0; t < 1000; ++t) {
        stepper.step(kDt);
        manager.tick(kDt);
    }
    EXPECT_EQ(manager.failures(), 1);
    return chipOutcomes(servers);
}

TEST(FleetTelemetry, AlertAndDumpAlignWithTheCrash)
{
    const std::string streamPath =
        ::testing::TempDir() + "fleet_telemetry_stream.jsonl";
    obs::telemetry::TelemetryConfig config;
    config.enabled = true;
    config.streamPath = streamPath;
    config.enableRecorder = true;
    config.recorder.dir = ::testing::TempDir();
    obs::telemetry::TelemetryHub hub(config);
    hub.slo().addRule(availabilityRule());

    runStorm(&hub);
    obs::setTracingEnabled(false);

    // The availability alert fires shortly after the 0.3 s crash
    // (watchdog heartbeat timeout + one burn-rate bucket) and has
    // resolved by the end of the run (server restored).
    ASSERT_EQ(hub.slo().alerts().size(), 1u);
    const obs::telemetry::SloAlertState &alert = hub.slo().alerts()[0];
    EXPECT_GE(alert.fireCount, 1u);
    EXPECT_GE(alert.firedAt.value(), kCrashAt);
    EXPECT_LE(alert.firedAt.value(), kCrashAt + 0.3);
    EXPECT_FALSE(alert.active);
    EXPECT_GT(alert.resolvedAt.value(), alert.firedAt.value());

    // At least one flight dump, and the first one brackets the
    // detection of the first (and only) server failure.
    const obs::telemetry::FlightRecorder *recorder = hub.recorder();
    ASSERT_NE(recorder, nullptr);
    const auto dumps = recorder->dumps();
    ASSERT_GE(dumps.size(), 1u);
    const obs::telemetry::FlightDump &first = dumps[0];
    EXPECT_EQ(first.reason.rfind("server_failure", 0), 0u);
    EXPECT_GE(first.triggerTime.value(), kCrashAt);
    EXPECT_LE(first.triggerTime.value(), kCrashAt + 0.2);
    EXPECT_LE(first.windowStart.value(), first.triggerTime.value());
    EXPECT_GE(first.windowEnd.value(), first.triggerTime.value());
    EXPECT_GT(first.events, 0u);

    // The stream carried sample lines plus the alert/dump records.
    EXPECT_GT(hub.streamLines(), 0u);

    // The sharded series actually accumulated fleet samples.
    EXPECT_FALSE(hub.merged("fleet.margin").empty());
    EXPECT_FALSE(hub.merged("recovery.online").empty());

    for (const auto &dump : dumps)
        std::remove(dump.path.c_str());
    std::remove(streamPath.c_str());
}

TEST(FleetTelemetry, TelemetryNeverPerturbsTheSimulation)
{
    // Arm 1: no telemetry plane at all.
    const std::vector<double> bare = runStorm(nullptr);

    // Arm 2: hub attached but disabled — instrumented call sites must
    // be pure branches.
    obs::telemetry::TelemetryConfig disabledConfig;
    disabledConfig.enabled = false;
    obs::telemetry::TelemetryHub disabled(disabledConfig);
    const std::vector<double> withDisabled = runStorm(&disabled);

    // Arm 3: the full plane — series, sketches, SLOs, recorder (which
    // arms tracing), stream. Telemetry is pull-only; chip outcomes
    // must stay bit-identical.
    obs::telemetry::TelemetryConfig enabledConfig;
    enabledConfig.enabled = true;
    enabledConfig.enableRecorder = true;
    enabledConfig.recorder.dir = ::testing::TempDir();
    obs::telemetry::TelemetryHub enabled(enabledConfig);
    enabled.slo().addRule(availabilityRule());
    const std::vector<double> withEnabled = runStorm(&enabled);
    obs::setTracingEnabled(false);

    ASSERT_EQ(bare.size(), withDisabled.size());
    ASSERT_EQ(bare.size(), withEnabled.size());
    for (size_t i = 0; i < bare.size(); ++i) {
        EXPECT_EQ(bare[i], withDisabled[i]) << "disabled, index " << i;
        EXPECT_EQ(bare[i], withEnabled[i]) << "enabled, index " << i;
    }

    for (const auto &dump : enabled.recorder()->dumps())
        std::remove(dump.path.c_str());
}

} // namespace
} // namespace agsim
