/**
 * @file
 * FlightRecorder tests: trigger arming, pre/post window bracketing,
 * the dump cap, trigger suppression during captures, and the dump
 * file format (header line + one JSON event per line).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry/flight_recorder.h"
#include "obs/trace.h"

namespace agsim::obs::telemetry {
namespace {

TraceEvent
eventAt(double t, TraceKind kind = TraceKind::Custom,
        const std::string &detail = "")
{
    TraceEvent event;
    event.simTime = Seconds{t};
    event.kind = kind;
    event.detail = detail;
    return event;
}

FlightRecorderConfig
testConfig(const std::string &dir)
{
    FlightRecorderConfig config;
    config.preWindow = Seconds{0.1};
    config.postWindow = Seconds{0.05};
    config.dir = dir;
    return config;
}

TEST(FlightRecorder, CaptureBracketsTheTrigger)
{
    const std::string dir = ::testing::TempDir();
    FlightRecorder recorder(testConfig(dir));

    // Pre-window noise; the oldest event falls outside the window.
    recorder.observe(eventAt(0.10));
    recorder.observe(eventAt(0.25));
    recorder.observe(eventAt(0.29));
    recorder.observe(
        eventAt(0.30, TraceKind::ServerFailure, "crash"));
    EXPECT_TRUE(recorder.capturing());

    // Post-window events keep landing in the open capture.
    recorder.observe(eventAt(0.32));
    recorder.tick(Seconds{0.34});
    EXPECT_TRUE(recorder.capturing());
    recorder.observe(eventAt(0.36));
    recorder.tick(Seconds{0.36});
    EXPECT_FALSE(recorder.capturing());

    const auto dumps = recorder.dumps();
    ASSERT_EQ(dumps.size(), 1u);
    const FlightDump &dump = dumps[0];
    EXPECT_EQ(dump.reason, "server_failure:crash");
    EXPECT_DOUBLE_EQ(dump.triggerTime.value(), 0.30);
    EXPECT_DOUBLE_EQ(dump.windowStart.value(), 0.20);
    EXPECT_DOUBLE_EQ(dump.windowEnd.value(), 0.35);
    // 0.10 predates the window; 0.36 postdates it. The four in
    // [0.20, 0.35] — 0.25, 0.29, the trigger, 0.32 — are kept.
    EXPECT_EQ(dump.events, 4u);
    EXPECT_FALSE(dump.path.empty());

    // File shape: one header line then one JSON object per event.
    std::ifstream in(dump.path);
    ASSERT_TRUE(in.good());
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line)) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        ++lines;
    }
    EXPECT_EQ(lines, 1u + dump.events);
    std::remove(dump.path.c_str());
}

TEST(FlightRecorder, TriggersDuringCaptureAreAbsorbed)
{
    const std::string dir = ::testing::TempDir();
    FlightRecorder recorder(testConfig(dir));
    recorder.observe(eventAt(1.0, TraceKind::ServerFailure, "first"));
    // The failure storm: more triggers while the capture is open all
    // belong to the same dump.
    recorder.observe(eventAt(1.01, TraceKind::ServerFailure, "second"));
    recorder.observe(eventAt(1.02, TraceKind::DegradationStep));
    recorder.tick(Seconds{1.2});
    const auto dumps = recorder.dumps();
    ASSERT_EQ(dumps.size(), 1u);
    EXPECT_EQ(dumps[0].reason, "server_failure:first");
    EXPECT_EQ(dumps[0].events, 3u);
    EXPECT_EQ(recorder.suppressedTriggers(), 2u);
    std::remove(dumps[0].path.c_str());
}

TEST(FlightRecorder, ManualTriggerAndDumpCap)
{
    FlightRecorderConfig config = testConfig(::testing::TempDir());
    config.maxDumps = 2;
    FlightRecorder recorder(config);
    for (int i = 0; i < 4; ++i) {
        const double t = double(i);
        recorder.observe(eventAt(t));
        recorder.trigger("slo:margin_floor", Seconds{t});
        recorder.tick(Seconds{t + 0.2});
    }
    const auto dumps = recorder.dumps();
    ASSERT_EQ(dumps.size(), 2u);
    EXPECT_EQ(dumps[0].reason, "slo:margin_floor");
    // Two later triggers were refused by the cap.
    EXPECT_EQ(recorder.suppressedTriggers(), 2u);
    for (const auto &dump : dumps)
        std::remove(dump.path.c_str());
}

TEST(FlightRecorder, DumpCapHoldsUnderConcurrentTriggers)
{
    // Regression: the maxDumps budget used to be checked against
    // dumps_.size(), which lags while a finalized dump's file is
    // written outside the lock; a trigger() landing in that window saw
    // an undercount and could arm a capture past the cap. The budget is
    // now committed inside finalize() (dumpsTaken_), so the cap holds
    // no matter how triggers interleave with the unlocked write.
    FlightRecorderConfig config = testConfig(::testing::TempDir());
    config.maxDumps = 4;
    FlightRecorder recorder(config);

    std::atomic<bool> stop{false};
    std::thread hammer([&] {
        // A competing trigger source, like an SLO fire callback racing
        // the control thread's tick.
        uint64_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            recorder.trigger("slo:concurrent",
                             Seconds{double(i) * 1e-3});
            ++i;
        }
    });
    for (int i = 0; i < 200; ++i) {
        const double t = double(i);
        recorder.observe(eventAt(t));
        recorder.trigger("manual", Seconds{t});
        recorder.tick(Seconds{t + 0.2});
    }
    stop.store(true, std::memory_order_relaxed);
    hammer.join();
    recorder.tick(Seconds{1e6});

    const auto dumps = recorder.dumps();
    EXPECT_EQ(dumps.size(), 4u);
    for (const auto &dump : dumps)
        std::remove(dump.path.c_str());
}

TEST(FlightRecorder, FlightDumpEventsNeverTrigger)
{
    FlightRecorder recorder(testConfig(::testing::TempDir()));
    TraceEvent event = eventAt(1.0, TraceKind::FlightDump);
    recorder.observe(event);
    EXPECT_FALSE(recorder.capturing());
    EXPECT_TRUE(recorder.dumps().empty());
}

TEST(FlightRecorder, DumpEventsAreTimeSorted)
{
    FlightRecorder recorder(testConfig(::testing::TempDir()));
    // Worker shards drift, so observed order is not time order.
    recorder.observe(eventAt(0.95));
    recorder.observe(eventAt(0.93));
    recorder.observe(eventAt(0.98));
    recorder.observe(eventAt(1.0, TraceKind::ServerFailure, "crash"));
    recorder.tick(Seconds{1.2});
    const auto dumps = recorder.dumps();
    ASSERT_EQ(dumps.size(), 1u);

    std::ifstream in(dumps[0].path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line)); // header
    double previous = -1.0;
    size_t events = 0;
    while (std::getline(in, line)) {
        const auto pos = line.find("\"t\":");
        ASSERT_NE(pos, std::string::npos);
        const double t = std::stod(line.substr(pos + 4));
        EXPECT_GE(t, previous);
        previous = t;
        ++events;
    }
    EXPECT_EQ(events, 4u);
    std::remove(dumps[0].path.c_str());
}

} // namespace
} // namespace agsim::obs::telemetry
