/**
 * @file
 * Frequency->QoS model tests (Fig. 18's freq-QoS box).
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/error.h"
#include "core/freq_qos_model.h"

namespace agsim::core {
namespace {

TEST(FreqQosModel, UntrainedThrows)
{
    FreqQosModel model;
    EXPECT_FALSE(model.trained());
    EXPECT_THROW(model.predictQos(Hertz{4.2e9}), ConfigError);
    EXPECT_THROW(model.frequencyForQos(0.5), ConfigError);
}

TEST(FreqQosModel, LatencyFallsWithFrequency)
{
    FreqQosModel model;
    // p90 latency drops ~1 ms per 10 MHz around 480 ms.
    for (double f = 4.40e9; f <= 4.60e9; f += 0.02e9)
        model.observe(Hertz{f}, 0.480 - (f - 4.40e9) * 1e-10);
    EXPECT_TRUE(model.trained());
    EXPECT_TRUE(model.frequencySensitive());
    EXPECT_LT(model.predictQos(Hertz{4.6e9}), model.predictQos(Hertz{4.4e9}));
}

TEST(FreqQosModel, FrequencyForQosInverts)
{
    FreqQosModel model;
    for (double f = 4.40e9; f <= 4.60e9; f += 0.02e9)
        model.observe(Hertz{f}, 0.480 - (f - 4.40e9) * 1e-10);
    const double target = 0.470;
    const Hertz needed = model.frequencyForQos(target);
    EXPECT_NEAR(model.predictQos(needed), target, 1e-6);
    // A tighter target needs more frequency.
    EXPECT_GT(model.frequencyForQos(0.465), needed);
}

TEST(FreqQosModel, TargetAlreadyMetEverywhere)
{
    FreqQosModel model;
    for (double f = 4.40e9; f <= 4.60e9; f += 0.02e9)
        model.observe(Hertz{f}, 0.480 - (f - 4.40e9) * 1e-10);
    // Looser than anything observed: any frequency works.
    EXPECT_DOUBLE_EQ(model.frequencyForQos(10.0), Hertz{0.0});
}

TEST(FreqQosModel, InsensitiveAppDetected)
{
    FreqQosModel model;
    // QoS flat in frequency (e.g. purely memory-bound app).
    for (double f = 4.40e9; f <= 4.60e9; f += 0.02e9)
        model.observe(Hertz{f}, 0.480);
    EXPECT_FALSE(model.frequencySensitive());
    // Flat and meeting the target: any frequency.
    EXPECT_DOUBLE_EQ(model.frequencyForQos(0.5), Hertz{0.0});
    // Flat and missing the target: none.
    EXPECT_EQ(model.frequencyForQos(0.4),
              Hertz{std::numeric_limits<double>::max()});
}

TEST(FreqQosModel, PositiveSlopeHandled)
{
    FreqQosModel model;
    // Pathological: QoS worsens with frequency (thermal throttling-ish).
    for (double f = 4.40e9; f <= 4.60e9; f += 0.02e9)
        model.observe(Hertz{f}, 0.400 + (f - 4.40e9) * 1e-10);
    const Hertz needed = model.frequencyForQos(0.45);
    // Falls back to intercept logic rather than inverting wrongly.
    EXPECT_TRUE(needed == Hertz{0.0} ||
                needed == Hertz{std::numeric_limits<double>::max()});
}

TEST(FreqQosModel, ResetClears)
{
    FreqQosModel model;
    model.observe(Hertz{4.4e9}, 0.5);
    model.observe(Hertz{4.5e9}, 0.4);
    model.reset();
    EXPECT_FALSE(model.trained());
}

TEST(FreqQosModel, RejectsBadObservations)
{
    FreqQosModel model;
    EXPECT_THROW(model.observe(Hertz{0.0}, 0.5), ConfigError);
}

} // namespace
} // namespace agsim::core
