/**
 * @file
 * Synthetic workload generator tests, including the predictor-
 * robustness study the generator exists for.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "core/ags.h"
#include "core/mips_predictor.h"
#include "stats/linear_fit.h"
#include "workload/generator.h"

namespace agsim::workload {
namespace {

TEST(Generator, ProfilesValidateAndAreNamed)
{
    WorkloadGenerator generator(7);
    std::set<std::string> names;
    for (const auto &p : generator.batch(64)) {
        EXPECT_NO_THROW(p.validate());
        EXPECT_EQ(p.suite, Suite::Synthetic);
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
    }
}

TEST(Generator, DeterministicBySeed)
{
    WorkloadGenerator a(11), b(11), c(12);
    const auto pa = a.next();
    const auto pb = b.next();
    const auto pc = c.next();
    EXPECT_DOUBLE_EQ(pa.intensity, pb.intensity);
    EXPECT_DOUBLE_EQ(pa.mipsPerThread, pb.mipsPerThread);
    EXPECT_NE(pa.mipsPerThread, pc.mipsPerThread);
}

TEST(Generator, ReproducesMipsPowerCorrelation)
{
    WorkloadGenerator generator(21);
    stats::LinearFit fit;
    for (const auto &p : generator.batch(200))
        fit.add(p.mipsPerThread / InstrPerSec{1e9}, p.intensity);
    EXPECT_NEAR(fit.slope(), 0.066, 0.01);
    EXPECT_GT(fit.r2(), 0.8);
}

TEST(Generator, MemoryBoundednessAntiCorrelatesWithMips)
{
    WorkloadGenerator generator(22);
    stats::LinearFit fit;
    for (const auto &p : generator.batch(200))
        fit.add(p.mipsPerThread / InstrPerSec{1e9}, p.memoryBoundedness);
    EXPECT_LT(fit.slope(), 0.0);
}

TEST(Generator, PhasedFractionHonoured)
{
    GeneratorParams params;
    params.phasedFraction = 1.0;
    WorkloadGenerator phased(3, params);
    for (const auto &p : phased.batch(16))
        EXPECT_FALSE(p.phases.empty()) << p.name;

    params.phasedFraction = 0.0;
    WorkloadGenerator steady(3, params);
    for (const auto &p : steady.batch(16))
        EXPECT_TRUE(p.phases.empty()) << p.name;
}

TEST(Generator, RejectsBadParams)
{
    GeneratorParams params;
    params.maxMips = params.minMips;
    EXPECT_THROW(WorkloadGenerator(1, params), ConfigError);

    params = GeneratorParams();
    params.multithreadedFraction = 1.5;
    EXPECT_THROW(WorkloadGenerator(1, params), ConfigError);
}

TEST(Generator, PredictorGeneralizesToUnseenWorkloads)
{
    // Train the Fig. 16 predictor on one synthetic population, test on
    // another: the linear model must transfer (the paper's scheduler
    // faces arbitrary tenants).
    WorkloadGenerator trainGen(100), testGen(200);
    core::MipsFreqPredictor predictor;

    auto measure = [](const BenchmarkProfile &profile) {
        core::ScheduledRunSpec spec;
        spec.profile = profile;
        spec.threads = 8;
        spec.runMode = profile.serialFraction > 0.0
                           ? RunMode::Multithreaded
                           : RunMode::Rate;
        spec.mode = chip::GuardbandMode::AdaptiveOverclock;
        spec.simConfig.measureDuration = Seconds{0.4};
        spec.simConfig.warmup = Seconds{0.8};
        const auto result = core::runScheduled(spec);
        return std::pair{result.metrics.meanChipMips,
                         result.metrics.meanFrequency};
    };

    for (const auto &p : trainGen.batch(12)) {
        const auto [mips, freq] = measure(p);
        predictor.observe(mips, freq);
    }
    ASSERT_TRUE(predictor.trained());

    stats::LinearFit residuals;
    double worstError = 0.0;
    for (const auto &p : testGen.batch(8)) {
        const auto [mips, freq] = measure(p);
        const double errorPct =
            abs(predictor.predict(mips) - freq) / freq * 100.0;
        worstError = std::max(worstError, errorPct);
    }
    // Paper: RMSE ~0.3%; demand generalization within ~1.5% worst-case.
    EXPECT_LT(worstError, 1.5);
}

} // namespace
} // namespace agsim::workload
