/**
 * @file
 * HealthAwarePlacer: quantum-by-quantum thread apportionment over
 * per-socket safety telemetry, including the re-arm hysteresis
 * properties the scheduling docs promise.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chip/chip_health.h"
#include "common/error.h"
#include "core/placement.h"
#include "obs/observability.h"

using namespace agsim;
using namespace agsim::core;

namespace {

constexpr size_t kCores = 8;

chip::ChipHealthView
healthyView()
{
    chip::ChipHealthView view;
    view.state = chip::SafetyState::Monitoring;
    view.commandedMode = chip::GuardbandMode::AdaptiveOverclock;
    view.effectiveMode = chip::GuardbandMode::AdaptiveOverclock;
    return view;
}

chip::ChipHealthView
demotedView(Seconds budget = Seconds{0.5})
{
    chip::ChipHealthView view = healthyView();
    view.state = chip::SafetyState::Demoted;
    view.effectiveMode = chip::GuardbandMode::StaticGuardband;
    view.demotions = 1;
    view.rearmBudget = budget;
    return view;
}

chip::ChipHealthView
latchedView()
{
    chip::ChipHealthView view = healthyView();
    view.state = chip::SafetyState::Latched;
    view.effectiveMode = chip::GuardbandMode::StaticGuardband;
    view.demotions = 3;
    view.rearms = 2;
    view.rearmBudget = Seconds{-1.0};
    return view;
}

/** Replicate the placer's per-thread speed credit for expectations. */
double
speedAt(const HealthAwareParams &params, bool trusted, size_t k)
{
    if (!trusted)
        return 1.0;
    return 1.0 + params.adaptiveHeadroom *
                     (1.0 - params.headroomDecay * double(k - 1) /
                                double(kCores - 1));
}

} // namespace

TEST(HealthAwarePlacer, HealthyFleetBalances)
{
    HealthAwarePlacer placer;
    const auto decision = placer.place({healthyView(), healthyView()},
                                       /*threads=*/4, kCores);
    EXPECT_EQ(decision.threadsPerSocket, (std::vector<size_t>{2, 2}));
    EXPECT_TRUE(decision.trusted[0]);
    EXPECT_TRUE(decision.trusted[1]);
    EXPECT_EQ(decision.migrated, 0u);
    EXPECT_NEAR(decision.share[0], 0.5, 1e-12);
    EXPECT_NE(decision.reason.find("healthy"), std::string::npos);
}

TEST(HealthAwarePlacer, SteersAwayFromDemotedSocket)
{
    HealthAwarePlacer placer;
    placer.place({healthyView(), healthyView()}, 4, kCores);

    const auto decision =
        placer.place({demotedView(), healthyView()}, 4, kCores);
    EXPECT_EQ(decision.threadsPerSocket, (std::vector<size_t>{0, 4}));
    EXPECT_FALSE(decision.trusted[0]);
    EXPECT_TRUE(decision.trusted[1]);
    EXPECT_EQ(decision.migrated, 2u);
    EXPECT_NE(decision.reason.find("steering around socket 0"),
              std::string::npos);
    EXPECT_NE(decision.reason.find("rearm in"), std::string::npos);
    EXPECT_EQ(placer.migrations(), 2);
}

TEST(HealthAwarePlacer, FirstQuantumWithSickSocketSteersWithoutMigration)
{
    HealthAwarePlacer placer;
    const auto decision =
        placer.place({latchedView(), healthyView()}, 4, kCores);
    EXPECT_EQ(decision.threadsPerSocket, (std::vector<size_t>{0, 4}));
    EXPECT_EQ(decision.migrated, 0u); // nothing placed yet, nothing moves
    EXPECT_NE(decision.reason.find("latched"), std::string::npos);
}

TEST(HealthAwarePlacer, RearmHysteresisDelaysReturn)
{
    HealthAwareParams params;
    params.rearmConfidence = 2;
    HealthAwarePlacer placer(params);
    placer.place({healthyView(), healthyView()}, 4, kCores);
    placer.place({demotedView(), healthyView()}, 4, kCores);

    // First healthy observation after the re-arm: not yet trusted, the
    // assignment must not flap back.
    const auto tentative =
        placer.place({healthyView(), healthyView()}, 4, kCores);
    EXPECT_EQ(tentative.threadsPerSocket, (std::vector<size_t>{0, 4}));
    EXPECT_FALSE(tentative.trusted[0]);
    EXPECT_EQ(tentative.migrated, 0u);
    EXPECT_NE(tentative.reason.find("awaiting rearm confidence"),
              std::string::npos);

    // Second consecutive healthy observation: trust returns, threads
    // rebalance.
    const auto rebalanced =
        placer.place({healthyView(), healthyView()}, 4, kCores);
    EXPECT_EQ(rebalanced.threadsPerSocket, (std::vector<size_t>{2, 2}));
    EXPECT_TRUE(rebalanced.trusted[0]);
    EXPECT_EQ(rebalanced.migrated, 2u);
}

/**
 * Property (docs/SCHEDULING.md): one demote/re-arm cycle causes at most
 * one migration away, and at most one return migration after trust is
 * re-established — never a flap per quantum.
 */
TEST(HealthAwarePlacer, SingleCycleCausesAtMostOneMigrationEachWay)
{
    for (int demoteAt = 1; demoteAt <= 4; ++demoteAt) {
        for (int cycleLen = 1; cycleLen <= 6; ++cycleLen) {
            HealthAwarePlacer placer;
            int eventsBeforeHeal = 0;
            int eventsAfterHeal = 0;
            const int healAt = demoteAt + cycleLen;
            for (int q = 0; q < healAt + 8; ++q) {
                const bool sick = q >= demoteAt && q < healAt;
                const auto decision = placer.place(
                    {sick ? demotedView() : healthyView(), healthyView()},
                    4, kCores);
                if (decision.migrated > 0)
                    (q < healAt ? eventsBeforeHeal : eventsAfterHeal)++;
            }
            EXPECT_LE(eventsBeforeHeal, 1)
                << "demoteAt=" << demoteAt << " cycleLen=" << cycleLen;
            EXPECT_LE(eventsAfterHeal, 1)
                << "demoteAt=" << demoteAt << " cycleLen=" << cycleLen;
        }
    }
}

/** Flapping faster than the confidence window never migrates back. */
TEST(HealthAwarePlacer, RapidFlappingCausesOneMigrationTotal)
{
    HealthAwarePlacer placer;
    placer.place({healthyView(), healthyView()}, 4, kCores);
    int events = 0;
    for (int q = 0; q < 20; ++q) {
        const bool sick = q % 2 == 0; // heals for one quantum at a time
        const auto decision = placer.place(
            {sick ? demotedView() : healthyView(), healthyView()}, 4,
            kCores);
        if (decision.migrated > 0)
            ++events;
    }
    EXPECT_EQ(events, 1); // the initial steer-away only
    EXPECT_EQ(placer.migrations(), 2);
}

/**
 * Property: under full load a permanently latched socket still runs
 * work, and its expected MIPS share converges to its static-guardband
 * share of the fleet (threads cannot all fit elsewhere).
 */
TEST(HealthAwarePlacer, LatchedSocketConvergesToStaticShare)
{
    HealthAwareParams params;
    HealthAwarePlacer placer(params);
    HealthAwarePlacer::Decision decision;
    for (int q = 0; q < 6; ++q)
        decision = placer.place({latchedView(), healthyView()},
                                /*threads=*/2 * kCores, kCores);

    // Full machine: capacity forces 8 + 8.
    EXPECT_EQ(decision.threadsPerSocket,
              (std::vector<size_t>{kCores, kCores}));

    double staticSpeed = 0.0;
    double trustedSpeed = 0.0;
    for (size_t k = 1; k <= kCores; ++k) {
        staticSpeed += speedAt(params, false, k);
        trustedSpeed += speedAt(params, true, k);
    }
    const double expected = staticSpeed / (staticSpeed + trustedSpeed);
    EXPECT_NEAR(decision.share[0], expected, 1e-12);
    EXPECT_LT(decision.share[0], decision.share[1]);
}

TEST(HealthAwarePlacer, PartialOverloadSpillsOntoLatchedSocket)
{
    HealthAwarePlacer placer;
    const auto decision =
        placer.place({latchedView(), healthyView()}, 12, kCores);
    // The healthy socket fills first; only the spill lands on the
    // latched one.
    EXPECT_EQ(decision.threadsPerSocket, (std::vector<size_t>{4, 8}));
}

TEST(HealthAwarePlacer, DisabledFallsBackToBorrowing)
{
    HealthAwareParams params;
    params.enabled = false;
    HealthAwarePlacer placer(params);
    const auto decision =
        placer.place({latchedView(), healthyView()}, 4, kCores);
    EXPECT_EQ(decision.threadsPerSocket, (std::vector<size_t>{2, 2}));
    EXPECT_NE(decision.reason.find("disabled"), std::string::npos);
}

TEST(HealthAwarePlacer, StaticFleetCarriesNoHeadroom)
{
    auto staticView = healthyView();
    staticView.commandedMode = chip::GuardbandMode::StaticGuardband;
    staticView.effectiveMode = chip::GuardbandMode::StaticGuardband;
    HealthAwarePlacer placer;
    const auto decision =
        placer.place({staticView, staticView}, 4, kCores);
    EXPECT_EQ(decision.threadsPerSocket, (std::vector<size_t>{2, 2}));
    EXPECT_FALSE(decision.trusted[0]);
    EXPECT_FALSE(decision.trusted[1]);
    EXPECT_NE(decision.reason.find("no adaptive headroom"),
              std::string::npos);
}

TEST(HealthAwarePlacer, DroopCeilingDistrustsStormStruckSocket)
{
    HealthAwareParams params;
    params.droopDepthCeiling = Volts{60e-3};
    HealthAwarePlacer placer(params);
    auto stormStruck = healthyView();
    stormStruck.latchedDroopDepth = Volts{80e-3};
    const auto decision =
        placer.place({stormStruck, healthyView()}, 4, kCores);
    EXPECT_EQ(decision.threadsPerSocket, (std::vector<size_t>{0, 4}));
    EXPECT_FALSE(decision.trusted[0]);
}

TEST(HealthAwarePlacer, ResetForgetsHistory)
{
    HealthAwarePlacer placer;
    placer.place({healthyView(), healthyView()}, 4, kCores);
    placer.place({demotedView(), healthyView()}, 4, kCores);
    placer.reset();
    // After reset the next decision is a "first" one again: no
    // migration accounting against the forgotten assignment.
    const auto decision =
        placer.place({healthyView(), healthyView()}, 4, kCores);
    EXPECT_EQ(decision.migrated, 0u);
}

TEST(HealthAwarePlacer, ValidatesParamsAndInputs)
{
    HealthAwareParams negative;
    negative.adaptiveHeadroom = -0.1;
    EXPECT_THROW(HealthAwarePlacer{negative}, ConfigError);

    HealthAwareParams decay;
    decay.headroomDecay = 1.5;
    EXPECT_THROW(HealthAwarePlacer{decay}, ConfigError);

    HealthAwareParams confidence;
    confidence.rearmConfidence = 0;
    EXPECT_THROW(HealthAwarePlacer{confidence}, ConfigError);

    HealthAwarePlacer placer;
    EXPECT_THROW(placer.place({}, 4, kCores), ConfigError);
    EXPECT_THROW(placer.place({healthyView()}, 0, kCores), ConfigError);
    EXPECT_THROW(placer.place({healthyView()}, kCores + 1, kCores),
                 ConfigError);
}

TEST(HealthAwarePlacer, EmitsObsCountersAndTraceEvents)
{
    const int64_t decisionsBefore =
        obs::registry().counter("placement.health.decisions").value();
    const int64_t migrationsBefore =
        obs::registry().counter("placement.health.migrations").value();
    obs::setTracingEnabled(true);
    const uint64_t recordedBefore = obs::trace().recorded();

    HealthAwarePlacer placer;
    placer.place({healthyView(), healthyView()}, 4, kCores, Seconds{1.0});
    placer.place({demotedView(), healthyView()}, 4, kCores, Seconds{2.0});
    obs::setTracingEnabled(false);

    EXPECT_EQ(obs::registry().counter("placement.health.decisions").value(),
              decisionsBefore + 2);
    EXPECT_EQ(obs::registry().counter("placement.health.migrations").value(),
              migrationsBefore + placer.migrations());
    EXPECT_GE(obs::trace().recorded(), recordedBefore + 2);

    bool sawDecision = false;
    for (const auto &event : obs::trace().events()) {
        if (event.kind == obs::TraceKind::PlacementDecision &&
            event.detail.find("steering around socket 0") !=
                std::string::npos)
            sawDecision = true;
    }
    EXPECT_TRUE(sawDecision);
}

TEST(HealthAwarePlan, ExpandsDecisionWithTrustedFirstReserve)
{
    HealthAwarePlacer::Decision decision;
    decision.threadsPerSocket = {1, 3};
    decision.trusted = {false, true};

    const PlacementPlan plan =
        makeHealthAwarePlacementPlan(decision, kCores,
                                     /*poweredCoreBudget=*/6);
    ASSERT_EQ(plan.threads.size(), 4u);
    EXPECT_EQ(plan.threads[0].socket, 0u);
    EXPECT_EQ(plan.threads[1].socket, 1u);
    // Threads occupy each socket's low cores.
    for (const auto &p : plan.threads)
        EXPECT_LT(p.core, decision.threadsPerSocket[p.socket]);

    // 2 spare powered cores go to the trusted socket first.
    ASSERT_EQ(plan.idleCores.size(), 2u);
    EXPECT_EQ(plan.idleCores[0].first, 1u);
    EXPECT_EQ(plan.idleCores[1].first, 1u);

    // Everything else gates: 16 cores = 4 threads + 2 idle + 10 gated.
    EXPECT_EQ(plan.gatedCores.size(), 10u);

    // Accounting: every core appears exactly once.
    std::vector<int> seen(2 * kCores, 0);
    for (const auto &p : plan.threads)
        ++seen[p.socket * kCores + p.core];
    for (const auto &[s, c] : plan.idleCores)
        ++seen[s * kCores + c];
    for (const auto &[s, c] : plan.gatedCores)
        ++seen[s * kCores + c];
    for (int count : seen)
        EXPECT_EQ(count, 1);
}

TEST(HealthAwarePlan, RejectsOverCapacityDecisions)
{
    HealthAwarePlacer::Decision decision;
    decision.threadsPerSocket = {kCores + 1, 0};
    EXPECT_THROW(makeHealthAwarePlacementPlan(decision, kCores, 16),
                 ConfigError);

    decision.threadsPerSocket = {4, 4};
    EXPECT_THROW(makeHealthAwarePlacementPlan(decision, kCores, 4),
                 ConfigError);
}
