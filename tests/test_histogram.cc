/**
 * @file
 * Histogram tests: binning, edge cases, CDF.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "stats/histogram.h"

namespace agsim::stats {
namespace {

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), ConfigError);
    EXPECT_THROW(Histogram(2.0, 1.0, 4), ConfigError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

TEST(Histogram, BinsSamplesCorrectly)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);  // bin 0
    h.add(1.9);  // bin 0
    h.add(2.0);  // bin 1
    h.add(9.99); // bin 4
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflowBuckets)
{
    Histogram h(0.0, 1.0, 2);
    h.add(-0.1);
    h.add(1.0); // hi edge counts as overflow
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
}

TEST(Histogram, CdfMonotoneAndBounded)
{
    Histogram h(0.0, 100.0, 50);
    for (int i = 0; i < 1000; ++i)
        h.add(double(i % 100));
    double prev = 0.0;
    for (double x = 0.0; x <= 100.0; x += 5.0) {
        const double c = h.cdf(x);
        EXPECT_GE(c, prev - 1e-12);
        EXPECT_GE(c, 0.0);
        EXPECT_LE(c, 1.0);
        prev = c;
    }
    EXPECT_NEAR(h.cdf(100.0), 1.0, 1e-12);
    EXPECT_NEAR(h.cdf(50.0), 0.5, 0.02);
}

TEST(Histogram, CdfEmptyIsZero)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.cdf(0.5), 0.0);
}

TEST(Histogram, RenderMentionsCounts)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(0.6);
    h.add(1.5);
    const std::string out = h.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(Histogram, OutOfRangeBinAccessPanics)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_THROW(h.binCount(2), InternalError);
    EXPECT_THROW(h.binCenter(9), InternalError);
}

} // namespace
} // namespace agsim::stats
