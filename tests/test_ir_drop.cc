/**
 * @file
 * IR-drop model tests: global/local split, floorplan adjacency,
 * coupling, and the paper's localized-activation observation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "pdn/ir_drop.h"

namespace agsim::pdn {
namespace {

using namespace agsim::units;

TEST(IrDrop, GlobalDropLinearInChipCurrent)
{
    IrDropModel model;
    EXPECT_DOUBLE_EQ(model.globalDrop(Amps{0.0}), Volts{0.0});
    EXPECT_NEAR(model.globalDrop(Amps{100.0}),
                model.params().globalResistance * Amps{100.0}, 1e-12);
    EXPECT_NEAR(model.globalDrop(Amps{200.0}) / model.globalDrop(Amps{100.0}), 2.0,
                1e-9);
}

TEST(IrDrop, FloorplanAdjacency)
{
    // POWER7+ floorplan: cores 0-3 on the top row, 4-7 on the bottom.
    IrDropModel model;
    EXPECT_TRUE(model.adjacent(0, 1));
    EXPECT_TRUE(model.adjacent(1, 0));
    EXPECT_TRUE(model.adjacent(2, 3));
    EXPECT_FALSE(model.adjacent(3, 4)); // row wrap is not adjacency
    EXPECT_TRUE(model.adjacent(0, 4));  // vertically across rows
    EXPECT_TRUE(model.adjacent(5, 6));
    EXPECT_FALSE(model.adjacent(0, 2));
    EXPECT_FALSE(model.adjacent(0, 5));
    EXPECT_FALSE(model.adjacent(0, 0));
}

TEST(IrDrop, OwnActivationDominatesLocalDrop)
{
    IrDropModel model;
    std::vector<Amps> currents(8, Amps{0.0});
    currents[2] = Amps{9.0};
    const Volts own = model.localDrop(2, currents);
    const Volts neighbour = model.localDrop(3, currents);
    const Volts far = model.localDrop(7, currents);
    EXPECT_GT(own, neighbour);
    EXPECT_GT(neighbour, far);
    EXPECT_NEAR(own, model.params().localResistance * Amps{9.0}, 1e-12);
    EXPECT_NEAR(neighbour,
                model.params().neighbourCoupling *
                (model.params().localResistance * Amps{9.0}), 1e-12);
    EXPECT_NEAR(far,
                model.params().farCoupling *
                (model.params().localResistance * Amps{9.0}), 1e-12);
}

TEST(IrDrop, ActivationStepMatchesPaperScale)
{
    // Fig. 7: a core's drop steps up by ~2% of 1.2 V (~24 mV total with
    // shared components) when the core itself activates. The local-only
    // share is ~18 mV for a ~9 A core.
    IrDropModel model;
    std::vector<Amps> idle(8, Amps{1.0});
    std::vector<Amps> active = idle;
    active[5] = Amps{9.0};
    const Volts step = model.localDrop(5, active) - model.localDrop(5, idle);
    EXPECT_GT(toMilliVolts(step), 10.0);
    EXPECT_LT(toMilliVolts(step), 25.0);
}

TEST(IrDrop, OnChipVoltageComposition)
{
    IrDropModel model;
    std::vector<Amps> currents(8, Amps{5.0});
    const Amps chipCurrent = Amps{80.0};
    const Volts rail = Volts{1.15};
    const Volts v = model.onChipVoltage(0, rail, chipCurrent, currents);
    EXPECT_NEAR(v,
                rail - model.globalDrop(chipCurrent) -
                model.localDrop(0, currents), 1e-12);
    EXPECT_LT(v, rail);
}

TEST(IrDrop, DropGrowsWithActiveCores)
{
    // The Sec. 4.2 core-scaling trend: activating cores one by one
    // monotonically deepens every core's drop.
    IrDropModel model;
    std::vector<Amps> currents(8, Amps{0.5});
    Volts prev = Volts{-1.0};
    for (size_t active = 1; active <= 8; ++active) {
        for (size_t i = 0; i < active; ++i)
            currents[i] = Amps{9.0};
        const Amps chip{40.0 + 9.0 * double(active)};
        const Volts drop = model.globalDrop(chip) +
                           model.localDrop(0, currents);
        EXPECT_GT(drop, prev);
        prev = drop;
    }
}

TEST(IrDrop, InactiveCoreSeesGlobalEffect)
{
    // Paper: cores 4-7 see drop even when only 0-3 run work.
    IrDropModel model;
    std::vector<Amps> currents(8, Amps{0.0});
    for (size_t i = 0; i < 4; ++i)
        currents[i] = Amps{9.0};
    const Volts idleCoreDrop = model.onChipVoltage(7, Volts{1.15}, Amps{76.0}, currents);
    const Volts noLoad = model.onChipVoltage(
        7, Volts{1.15}, Amps{0.0}, std::vector<Amps>(8, Amps{0.0}));
    EXPECT_LT(idleCoreDrop, noLoad);
}

TEST(IrDrop, RejectsBadParams)
{
    IrDropParams params;
    params.globalResistance = -Ohms{1.0};
    EXPECT_THROW(IrDropModel{params}, ConfigError);

    params = IrDropParams();
    params.coreCount = 0;
    EXPECT_THROW(IrDropModel{params}, ConfigError);

    params = IrDropParams();
    params.farCoupling = 0.5; // above neighbourCoupling
    EXPECT_THROW(IrDropModel{params}, ConfigError);
}

TEST(IrDrop, SizeMismatchPanics)
{
    IrDropModel model;
    std::vector<Amps> wrong(4, Amps{1.0});
    EXPECT_THROW(model.localDrop(0, wrong), InternalError);
    EXPECT_THROW(model.localDrop(9, std::vector<Amps>(8, Amps{1.0})),
                 InternalError);
}

} // namespace
} // namespace agsim::pdn
