/**
 * @file
 * Linear-fit tests: exact recovery, noise behaviour, degenerate input.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/linear_fit.h"

namespace agsim::stats {
namespace {

TEST(LinearFit, RecoversExactLine)
{
    LinearFit fit;
    for (double x = 0.0; x <= 10.0; x += 1.0)
        fit.add(x, 3.0 * x - 7.0);
    EXPECT_NEAR(fit.slope(), 3.0, 1e-9);
    EXPECT_NEAR(fit.intercept(), -7.0, 1e-9);
    EXPECT_NEAR(fit.r2(), 1.0, 1e-12);
    EXPECT_NEAR(fit.rmse(), 0.0, 1e-9);
    EXPECT_NEAR(fit.predict(20.0), 53.0, 1e-9);
}

TEST(LinearFit, NegativeSlopeLikeFig16)
{
    // Frequency falls ~2.5 MHz per 1000 MIPS from a 4600 MHz intercept.
    LinearFit fit;
    for (double mips = 5000; mips <= 80000; mips += 5000)
        fit.add(mips, 4600e6 - 2.5e3 * mips);
    EXPECT_NEAR(fit.slope(), -2.5e3, 1.0);
    EXPECT_NEAR(fit.intercept(), 4600e6, 1e3);
    EXPECT_NEAR(fit.correlation(), -1.0, 1e-9);
}

TEST(LinearFit, FewerThanTwoPointsIsDegenerate)
{
    LinearFit fit;
    EXPECT_DOUBLE_EQ(fit.slope(), 0.0);
    fit.add(1.0, 5.0);
    EXPECT_DOUBLE_EQ(fit.slope(), 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept(), 5.0);
    EXPECT_DOUBLE_EQ(fit.predict(100.0), 5.0);
}

TEST(LinearFit, ConstantXIsDegenerate)
{
    LinearFit fit;
    fit.add(2.0, 1.0);
    fit.add(2.0, 3.0);
    fit.add(2.0, 5.0);
    EXPECT_DOUBLE_EQ(fit.slope(), 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept(), 3.0);
    EXPECT_DOUBLE_EQ(fit.r2(), 0.0);
}

TEST(LinearFit, ConstantYHasZeroSlopeAndRmse)
{
    LinearFit fit;
    for (double x = 0; x < 5; ++x)
        fit.add(x, 4.0);
    EXPECT_DOUBLE_EQ(fit.slope(), 0.0);
    EXPECT_NEAR(fit.rmse(), 0.0, 1e-12);
}

TEST(LinearFit, NoisyFitStatistics)
{
    Rng rng(31);
    LinearFit fit;
    const double sigma = 2.0;
    for (int i = 0; i < 20000; ++i) {
        const double x = rng.uniform(0.0, 100.0);
        fit.add(x, 0.5 * x + 10.0 + rng.normal(0.0, sigma));
    }
    EXPECT_NEAR(fit.slope(), 0.5, 0.01);
    EXPECT_NEAR(fit.intercept(), 10.0, 0.5);
    EXPECT_NEAR(fit.rmse(), sigma, 0.1);
    EXPECT_GT(fit.r2(), 0.95);
}

TEST(LinearFit, ResetClears)
{
    LinearFit fit;
    fit.add(0.0, 0.0);
    fit.add(1.0, 1.0);
    fit.reset();
    EXPECT_EQ(fit.count(), 0u);
    EXPECT_DOUBLE_EQ(fit.slope(), 0.0);
}

TEST(LinearFit, StableUnderLargeOffsets)
{
    // Values like Hz-scale frequencies (1e9) with MIPS-scale x (1e4).
    LinearFit fit;
    for (double x = 1e4; x <= 9e4; x += 1e4)
        fit.add(x, 4.6e9 - 2500.0 * x);
    EXPECT_NEAR(fit.slope(), -2500.0, 1e-3);
    EXPECT_NEAR(fit.r2(), 1.0, 1e-9);
}

} // namespace
} // namespace agsim::stats
