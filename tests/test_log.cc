/**
 * @file
 * Logging-facility tests.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/log.h"

namespace agsim {
namespace {

/** RAII guard restoring the global level after each test. */
class LogLevelGuard
{
  public:
    LogLevelGuard() : saved_(logLevel()) {}
    ~LogLevelGuard() { setLogLevel(saved_); }

  private:
    LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn)
{
    // The library must not chat by default (benches print tables only).
    LogLevelGuard guard;
    EXPECT_EQ(logLevel(), LogLevel::Warn);
}

TEST(Log, SetLevelRoundTrips)
{
    LogLevelGuard guard;
    for (LogLevel level : {LogLevel::Debug, LogLevel::Info,
                           LogLevel::Warn, LogLevel::Error,
                           LogLevel::Silent}) {
        setLogLevel(level);
        EXPECT_EQ(logLevel(), level);
    }
}

TEST(Log, LevelsAreOrdered)
{
    EXPECT_LT(LogLevel::Debug, LogLevel::Info);
    EXPECT_LT(LogLevel::Info, LogLevel::Warn);
    EXPECT_LT(LogLevel::Warn, LogLevel::Error);
    EXPECT_LT(LogLevel::Error, LogLevel::Silent);
}

TEST(Log, EmittingBelowThresholdIsSafe)
{
    // Filtered messages must be cheap no-ops; emitted ones must not
    // crash. (Output goes to stderr; content is not asserted here.)
    LogLevelGuard guard;
    setLogLevel(LogLevel::Silent);
    logDebug("filtered");
    logInfo("filtered");
    logWarn("filtered");
    logError("filtered");
    setLogLevel(LogLevel::Debug);
    logDebug("emitted");
    SUCCEED();
}

TEST(Log, ConcurrentLoggingAndLevelChangesAreSafe)
{
    // The sink and the level are shared by parallel BatchRunner
    // workers; hammer both from several threads (TSan covers the
    // data-race half of this in the sanitizer CI job).
    LogLevelGuard guard;
    setLogLevel(LogLevel::Silent);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < 200; ++i) {
                logWarn("worker " + std::to_string(t) + " line " +
                        std::to_string(i));
                setLogLevel(i % 2 == 0 ? LogLevel::Silent
                                       : LogLevel::Error);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    SUCCEED();
}

} // namespace
} // namespace agsim
