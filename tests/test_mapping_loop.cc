/**
 * @file
 * Closed-loop adaptive-mapping tests and QoS service presets.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/mapping_loop.h"
#include "qos/service_presets.h"
#include "workload/library.h"

namespace agsim::core {
namespace {

std::vector<workload::BenchmarkProfile>
corunnerClasses()
{
    return {workload::throttledCoremark("light", InstrPerSec{13000e6 / 7.0}),
            workload::throttledCoremark("medium", InstrPerSec{28000e6 / 7.0}),
            workload::throttledCoremark("heavy", InstrPerSec{70000e6 / 7.0})};
}

TEST(MappingLoop, BlindHeavyMappingGetsCorrected)
{
    qos::WebSearchService service;
    AdaptiveMappingScheduler scheduler;
    MappingLoopConfig config;
    config.initialCorunner = 2; // blind: heavy
    config.quanta = 5;
    config.qosHorizon = Seconds{9000.0};

    const auto result = runMappingLoop(
        workload::byName("websearch"), corunnerClasses(), service,
        scheduler, config);

    ASSERT_EQ(result.history.size(), 5u);
    EXPECT_EQ(result.history.front().corunner, "heavy");
    // The blind mapping violates hard; the loop must swap off it.
    EXPECT_GT(result.initialViolationRate, 0.20);
    EXPECT_TRUE(result.history.front().swapped);
    EXPECT_NE(result.history.back().corunner, "heavy");
    // And the final violation rate improves substantially.
    EXPECT_LT(result.finalViolationRate,
              result.initialViolationRate * 0.7);
    // The mapping settles (no churn at the end).
    EXPECT_LT(result.convergedAt, result.history.size());
    EXPECT_FALSE(result.history.back().swapped);
}

TEST(MappingLoop, HealthyMappingLeftAlone)
{
    qos::WebSearchService service;
    AdaptiveMappingScheduler scheduler;
    MappingLoopConfig config;
    config.initialCorunner = 0; // light: QoS healthy
    config.quanta = 3;
    config.qosHorizon = Seconds{6000.0};

    const auto result = runMappingLoop(
        workload::byName("websearch"), corunnerClasses(), service,
        scheduler, config);
    for (const auto &quantum : result.history) {
        EXPECT_EQ(quantum.corunner, "light");
        EXPECT_FALSE(quantum.swapped);
    }
    EXPECT_EQ(result.convergedAt, 0u);
}

TEST(MappingLoop, HealthyPlatformReportsHealthyTelemetry)
{
    qos::WebSearchService service;
    AdaptiveMappingScheduler scheduler;
    MappingLoopConfig config;
    config.quanta = 2;
    config.qosHorizon = Seconds{3000.0};

    const auto result = runMappingLoop(
        workload::byName("websearch"), corunnerClasses(), service,
        scheduler, config);
    for (const auto &quantum : result.history) {
        EXPECT_TRUE(quantum.health.healthy());
        EXPECT_EQ(quantum.health.commandedMode,
                  chip::GuardbandMode::AdaptiveOverclock);
        EXPECT_EQ(quantum.health.demotions, 0);
    }
}

TEST(MappingLoop, ColocationFaultsSurfaceDemotedHealth)
{
    qos::WebSearchService service;
    AdaptiveMappingScheduler scheduler;
    MappingLoopConfig config;
    config.quanta = 2;
    config.qosHorizon = Seconds{3000.0};
    // Storm + CPM dropout demotes the host during every colocation
    // measurement; the view must ride along into the quantum records
    // (and from there into the scheduler's budget discount).
    config.colocationFaults.droopStorm(Seconds{0.05}, Seconds{0.0},
                                       30.0, 1.8)
        .cpmDropout(Seconds{0.05}, Seconds{0.0});

    const auto result = runMappingLoop(
        workload::byName("websearch"), corunnerClasses(), service,
        scheduler, config);
    for (const auto &quantum : result.history) {
        EXPECT_TRUE(quantum.health.demoted());
        EXPECT_EQ(quantum.health.commandedMode,
                  chip::GuardbandMode::AdaptiveOverclock);
        EXPECT_EQ(quantum.health.effectiveMode,
                  chip::GuardbandMode::StaticGuardband);
        EXPECT_GE(quantum.health.emergencies, 1);
    }
}

TEST(MappingLoop, Validation)
{
    qos::WebSearchService service;
    AdaptiveMappingScheduler scheduler;
    EXPECT_THROW(runMappingLoop(workload::byName("websearch"), {},
                                service, scheduler),
                 ConfigError);
    MappingLoopConfig config;
    config.initialCorunner = 9;
    EXPECT_THROW(runMappingLoop(workload::byName("websearch"),
                                corunnerClasses(), service, scheduler,
                                config),
                 ConfigError);
}

TEST(ServicePresets, ScalesAreDistinctAndValid)
{
    const auto search = qos::webSearchPreset();
    const auto kv = qos::keyValuePreset();
    const auto analytics = qos::analyticsPreset();
    // Each preset builds a working service.
    EXPECT_NO_THROW(qos::WebSearchService{search});
    EXPECT_NO_THROW(qos::WebSearchService{kv});
    EXPECT_NO_THROW(qos::WebSearchService{analytics});
    // Latency scales span ~four orders of magnitude.
    EXPECT_LT(kv.qosTargetP90, search.qosTargetP90 / 100.0);
    EXPECT_GT(analytics.qosTargetP90, search.qosTargetP90 * 10.0);
}

TEST(ServicePresets, EveryClassRespondsToFrequency)
{
    for (const auto &params : {qos::webSearchPreset(),
                               qos::keyValuePreset(),
                               qos::analyticsPreset()}) {
        qos::WebSearchService service(params);
        const Seconds horizon = params.windowLength * 40.0;
        const auto slow = service.simulate(Hertz{4.3e9}, horizon);
        service.reseed(params.seed);
        const auto fast = service.simulate(Hertz{4.6e9}, horizon);
        EXPECT_GT(qos::WebSearchService::meanP90(slow),
                  qos::WebSearchService::meanP90(fast));
    }
}

TEST(ServicePresets, UtilizationIsSane)
{
    // Every preset's offered load stays clear of saturation.
    for (const auto &params : {qos::webSearchPreset(),
                               qos::keyValuePreset(),
                               qos::analyticsPreset()}) {
        const double utilization =
            params.arrivalRatePerSec * params.serviceMeanAtNominal.value();
        EXPECT_GT(utilization, 0.05);
        EXPECT_LT(utilization, 0.85);
    }
}

} // namespace
} // namespace agsim::core
