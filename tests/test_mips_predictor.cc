/**
 * @file
 * MIPS-based frequency predictor tests (Fig. 16 machinery).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/mips_predictor.h"

namespace agsim::core {
namespace {

TEST(MipsPredictor, UntrainedThrows)
{
    MipsFreqPredictor predictor;
    EXPECT_FALSE(predictor.trained());
    EXPECT_THROW(predictor.predict(10000.0), ConfigError);
    EXPECT_THROW(predictor.maxMipsForFrequency(Hertz{4.4e9}), ConfigError);
    predictor.observe(10000.0, Hertz{4.5e9});
    EXPECT_FALSE(predictor.trained());
    predictor.observe(20000.0, Hertz{4.48e9});
    EXPECT_TRUE(predictor.trained());
}

TEST(MipsPredictor, RecoversLinearLaw)
{
    MipsFreqPredictor predictor;
    // The Fig. 16 regime: 4600 MHz intercept, -2.5 MHz per 1000 MIPS.
    for (double mips = 5000; mips <= 80000; mips += 2500)
        predictor.observe(mips, Hertz{4.6e9 - 2500.0 * mips});
    EXPECT_NEAR(predictor.slope(), -2500.0, 1.0);
    EXPECT_NEAR(predictor.intercept(), Hertz{4.6e9}, Hertz{1e4});
    EXPECT_NEAR(predictor.predict(40000.0), Hertz{4.5e9}, Hertz{1e5});
    EXPECT_LT(predictor.rmsePercent(), 1e-6);
    EXPECT_NEAR(predictor.r2(), 1.0, 1e-9);
}

TEST(MipsPredictor, InverseQueryMatchesForwardModel)
{
    MipsFreqPredictor predictor;
    for (double mips = 5000; mips <= 80000; mips += 2500)
        predictor.observe(mips, Hertz{4.6e9 - 2500.0 * mips});
    const double budget = predictor.maxMipsForFrequency(Hertz{4.45e9});
    EXPECT_NEAR(predictor.predict(budget), Hertz{4.45e9}, Hertz{1e3});
    // Demanding more frequency shrinks the budget.
    EXPECT_LT(predictor.maxMipsForFrequency(Hertz{4.55e9}), budget);
}

TEST(MipsPredictor, ImpossibleFrequencyYieldsZeroBudget)
{
    MipsFreqPredictor predictor;
    predictor.observe(10000.0, Hertz{4.5e9});
    predictor.observe(50000.0, Hertz{4.4e9});
    EXPECT_DOUBLE_EQ(predictor.maxMipsForFrequency(Hertz{5.0e9}), 0.0);
}

TEST(MipsPredictor, DegenerateFlatModel)
{
    MipsFreqPredictor predictor;
    predictor.observe(10000.0, Hertz{4.5e9});
    predictor.observe(50000.0, Hertz{4.5e9});
    // Flat: any load admissible when the intercept meets the target.
    EXPECT_GT(predictor.maxMipsForFrequency(Hertz{4.4e9}), 1e9);
    EXPECT_DOUBLE_EQ(predictor.maxMipsForFrequency(Hertz{4.6e9}), 0.0);
}

TEST(MipsPredictor, RmsePercentWithNoise)
{
    Rng rng(5);
    MipsFreqPredictor predictor;
    for (int i = 0; i < 1000; ++i) {
        const double mips = rng.uniform(5000.0, 80000.0);
        const Hertz freq = Hertz{4.6e9 - 2500.0 * mips +
                                 rng.normal(0.0, 13e6)}; // ~0.3% of 4.5 GHz
        predictor.observe(mips, freq);
    }
    EXPECT_NEAR(predictor.rmsePercent(), 0.29, 0.05);
    EXPECT_GT(predictor.r2(), 0.9);
}

TEST(MipsPredictor, ResetClearsTraining)
{
    MipsFreqPredictor predictor;
    predictor.observe(1.0, Hertz{4e9});
    predictor.observe(2.0, Hertz{4e9});
    predictor.reset();
    EXPECT_FALSE(predictor.trained());
    EXPECT_EQ(predictor.observations(), 0u);
    EXPECT_DOUBLE_EQ(predictor.rmsePercent(), 0.0);
}

TEST(MipsPredictor, RejectsBadObservations)
{
    MipsFreqPredictor predictor;
    EXPECT_THROW(predictor.observe(-1.0, Hertz{4e9}), ConfigError);
    EXPECT_THROW(predictor.observe(1000.0, Hertz{0.0}), ConfigError);
}

} // namespace
} // namespace agsim::core
