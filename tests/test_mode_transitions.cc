/**
 * @file
 * Guardband-mode transition tests: the chip must move safely between
 * static, overclock, undervolt and disabled modes mid-run, the way an
 * operator toggling firmware hooks would (paper Sec. 3.1: "hooks in
 * the firmware let us place the system in either operating mode").
 */

#include <gtest/gtest.h>

#include "chip/chip.h"
#include "common/units.h"
#include "pdn/vrm.h"

namespace agsim::chip {
namespace {

using namespace agsim::units;

class ModeTransitionTest : public ::testing::Test
{
  protected:
    ModeTransitionTest() : vrm_(1), chip_(ChipConfig(), &vrm_)
    {
        for (size_t i = 0; i < 4; ++i) {
            chip_.setLoad(i, CoreLoad::running(1.0, 13.0_mV, 24.0_mV));
        }
    }

    pdn::Vrm vrm_;
    Chip chip_;
};

TEST_F(ModeTransitionTest, UndervoltToStaticRestoresSetpoint)
{
    chip_.setMode(GuardbandMode::AdaptiveUndervolt);
    chip_.settle(Seconds{1.0});
    ASSERT_GT(chip_.undervoltAmount(), Volts{0.020});

    chip_.setMode(GuardbandMode::StaticGuardband);
    chip_.settle(Seconds{0.2});
    EXPECT_NEAR(chip_.undervoltAmount(), Volts{0.0}, Volts{1e-9});
    EXPECT_NEAR(chip_.coreFrequency(0), Hertz{4.2e9}, Hertz{1.0});
}

TEST_F(ModeTransitionTest, StaticToOverclockBoostsWithoutSetpointChange)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    chip_.settle(Seconds{0.3});
    const Volts setpoint = chip_.setpoint();

    chip_.setMode(GuardbandMode::AdaptiveOverclock);
    chip_.settle(Seconds{0.3});
    EXPECT_NEAR(chip_.setpoint(), setpoint, 1e-9);
    EXPECT_GT(chip_.meanActiveFrequency(), Hertz{4.25e9});
}

TEST_F(ModeTransitionTest, OverclockToUndervoltRepinsFrequency)
{
    chip_.setMode(GuardbandMode::AdaptiveOverclock);
    chip_.settle(Seconds{0.3});
    ASSERT_GT(chip_.meanActiveFrequency(), Hertz{4.25e9});

    chip_.setMode(GuardbandMode::AdaptiveUndervolt);
    chip_.settle(Seconds{1.0});
    // Frequency returns to the target; the margin goes to voltage.
    EXPECT_NEAR(chip_.meanActiveFrequency(), Hertz{4.2e9}, Hertz{0.003e9});
    EXPECT_GT(chip_.undervoltAmount(), Volts{0.020});
}

TEST_F(ModeTransitionTest, RepeatedTogglingIsStable)
{
    // An operator flipping modes every 200 ms must not wedge the
    // firmware or leak voltage steps.
    for (int cycle = 0; cycle < 4; ++cycle) {
        chip_.setMode(GuardbandMode::AdaptiveUndervolt);
        chip_.settle(Seconds{0.2});
        chip_.setMode(GuardbandMode::AdaptiveOverclock);
        chip_.settle(Seconds{0.2});
        chip_.setMode(GuardbandMode::StaticGuardband);
        chip_.settle(Seconds{0.2});
    }
    EXPECT_NEAR(chip_.setpoint(), chip_.staticSetpoint(), 1e-9);
    EXPECT_NEAR(chip_.coreFrequency(0), Hertz{4.2e9}, Hertz{1.0});
    EXPECT_GT(chip_.power(), Watts{40.0});
    EXPECT_LT(chip_.power(), Watts{130.0});
}

TEST_F(ModeTransitionTest, LoadChangesWhileUndervolted)
{
    // Activating more cores mid-undervolt must walk the voltage back
    // up (less margin available), not violate the target frequency.
    chip_.setMode(GuardbandMode::AdaptiveUndervolt);
    chip_.settle(Seconds{1.2});
    const Volts lightUndervolt = chip_.undervoltAmount();

    for (size_t i = 4; i < 8; ++i)
        chip_.setLoad(i, CoreLoad::running(1.1, 13.0_mV, 24.0_mV));
    chip_.settle(Seconds{1.2});
    EXPECT_LT(chip_.undervoltAmount(), lightUndervolt);
    EXPECT_NEAR(chip_.minActiveFrequency(), Hertz{4.2e9}, Hertz{0.01e9});
}

TEST_F(ModeTransitionTest, GatingWhileUndervoltedDeepensWalk)
{
    chip_.setMode(GuardbandMode::AdaptiveUndervolt);
    chip_.settle(Seconds{1.2});
    const Volts allOn = chip_.undervoltAmount();

    for (size_t i = 4; i < 8; ++i)
        chip_.setLoad(i, CoreLoad::powerGated());
    chip_.settle(Seconds{1.2});
    EXPECT_GE(chip_.undervoltAmount(), allOn);
}

} // namespace
} // namespace agsim::chip
