/**
 * @file
 * The observability determinism contract: enabling tracing, profiling,
 * or both must not change a simulation's results in any bit. Metrics
 * and events are written outside all simulation state, wall-clock
 * readings never feed back, and sim-time stamps come from bookkeeping
 * the solver does not read — this file holds that line.
 */

#include <gtest/gtest.h>

#include <string>

#include "chip/chip.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "obs/observability.h"
#include "pdn/vrm.h"
#include "sensors/telemetry_csv.h"
#include "system/run_batch.h"
#include "system/simulation.h"
#include "workload/library.h"

namespace agsim {
namespace {

/**
 * A run exercising every instrumented path: adaptive firmware, droops,
 * a fault activation, and a safety demotion; returns the full telemetry
 * dump (the paper's AMESTER CSV) as the run's fingerprint.
 */
std::string
instrumentedChipRun(uint64_t seed)
{
    pdn::Vrm vrm(1);
    chip::ChipConfig config;
    config.seed = seed;
    config.undervolt.maxUndervolt = Volts{0.120};
    config.safety.maxRearms = 0;
    chip::Chip c(config, &vrm);
    c.setMode(chip::GuardbandMode::AdaptiveUndervolt);
    for (size_t i = 0; i < c.coreCount(); ++i)
        c.setLoad(i, chip::CoreLoad::running(1.0, Volts{13.0e-3}, Volts{24.0e-3}));
    c.settle(Seconds{0.5}, Seconds{1e-3});

    fault::FaultPlan plan;
    plan.cpmOptimisticBias(Seconds{0.05}, Seconds{0.0}, Volts{0.040});
    fault::FaultInjector injector(plan, c.coreCount());
    c.attachFaultInjector(&injector);
    for (int i = 0; i < 2000; ++i)
        c.step(Seconds{1e-3});
    return sensors::telemetryCsvString(c.telemetry());
}

/** A small batch through the runner (task lifecycle events). */
std::string
batchFingerprint(uint64_t seed, size_t workers)
{
    std::vector<system::BatchTask> tasks;
    for (int t = 0; t < 3; ++t) {
        system::BatchTask task;
        task.label = "task" + std::to_string(t);
        task.mode = chip::GuardbandMode::AdaptiveUndervolt;
        task.serverConfig.chipTemplate.seed = seed + uint64_t(t);
        task.simConfig.warmup = Seconds{0.2};
        task.simConfig.measureDuration = Seconds{0.2};
        task.jobs.push_back(system::Job{
            workload::ThreadedWorkload(workload::byName("raytrace"),
                                       workload::RunMode::Rate),
            {system::ThreadPlacement{0, 0},
             system::ThreadPlacement{0, 1}},
            "raytrace"});
        tasks.push_back(std::move(task));
    }
    const auto results =
        system::BatchRunner::runAll(std::move(tasks), workers);
    std::string out;
    for (const auto &result : results) {
        out += result.label + ":";
        out += std::to_string(result.metrics.meanChipMips) + ",";
        out += std::to_string(result.metrics.socketPower[0].value()) + ",";
        out +=
            std::to_string(result.finalCoreFrequency[0][0].value()) + ";";
    }
    return out;
}

class ObsDeterminism : public ::testing::Test
{
  protected:
    void SetUp() override { obs::resetAll(); }
    void TearDown() override { obs::resetAll(); }
};

TEST_F(ObsDeterminism, TracingDoesNotPerturbChipRun)
{
    const std::string off = instrumentedChipRun(0x5EED);

    obs::setTracingEnabled(true);
    const std::string on = instrumentedChipRun(0x5EED);
    EXPECT_GT(obs::trace().recorded(), 0u);

    EXPECT_EQ(off, on) << "tracing changed the telemetry dump";
}

TEST_F(ObsDeterminism, ProfilingDoesNotPerturbChipRun)
{
    const std::string off = instrumentedChipRun(0x5EED);

    obs::setProfilingEnabled(true);
    const std::string on = instrumentedChipRun(0x5EED);
    EXPECT_GT(obs::registry()
                  .counter("chip.step.solver.calls", {{"socket", "0"}})
                  .value(),
              0);

    EXPECT_EQ(off, on) << "profiling changed the telemetry dump";
}

TEST_F(ObsDeterminism, FullObservabilityKeepsBatchBitIdentical)
{
    const std::string off = batchFingerprint(42, 1);

    obs::setTracingEnabled(true);
    obs::setProfilingEnabled(true);
    // Parallel on top of tracing: worker interleaving may reorder the
    // ring, but the simulation results must not move.
    const std::string on = batchFingerprint(42, 3);
    EXPECT_GT(obs::trace().recorded(), 0u);

    EXPECT_EQ(off, on) << "observability changed batch results";
}

} // namespace
} // namespace agsim
