/**
 * @file
 * Metric-registry tests: identity, aggregation across threads, JSON
 * snapshot shape, and the JSON emission primitives.
 */

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/scoped_timer.h"

namespace agsim::obs {
namespace {

TEST(MetricKey, SortsLabelsByName)
{
    EXPECT_EQ(MetricRegistry::key("chip.steps", {}), "chip.steps");
    EXPECT_EQ(MetricRegistry::key(
                  "chip.steps", {{"socket", "1"}, {"core", "3"}}),
              "chip.steps{core=3,socket=1}");
    // Label order must not create distinct identities.
    EXPECT_EQ(MetricRegistry::key("x", {{"a", "1"}, {"b", "2"}}),
              MetricRegistry::key("x", {{"b", "2"}, {"a", "1"}}));
}

TEST(MetricRegistry, CounterIsGetOrCreate)
{
    MetricRegistry registry;
    Counter &a = registry.counter("events", {{"socket", "0"}});
    Counter &b = registry.counter("events", {{"socket", "0"}});
    Counter &other = registry.counter("events", {{"socket", "1"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &other);
    a.add(3);
    b.add();
    EXPECT_EQ(a.value(), 4);
    EXPECT_EQ(other.value(), 0);
}

TEST(MetricRegistry, GaugeKeepsLastWrite)
{
    MetricRegistry registry;
    Gauge &g = registry.gauge("setpoint_v");
    g.set(1.2);
    g.set(1.15);
    EXPECT_DOUBLE_EQ(g.value(), 1.15);
}

TEST(MetricRegistry, HistogramFirstRegistrationFixesLayout)
{
    MetricRegistry registry;
    HistogramMetric &h = registry.histogram("wall_ms", 0.0, 100.0, 10);
    HistogramMetric &again =
        registry.histogram("wall_ms", -5.0, 5.0, 99);
    EXPECT_EQ(&h, &again);
    EXPECT_DOUBLE_EQ(again.hi(), 100.0);
    EXPECT_EQ(again.bins(), 10u);
    h.observe(42.0);
    EXPECT_EQ(h.snapshot().total(), 1u);
}

TEST(MetricRegistry, ConcurrentAddsAggregate)
{
    MetricRegistry registry;
    Counter &c = registry.counter("hits");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&registry] {
            // Re-lookup inside the thread: same identity, same cell.
            Counter &mine = registry.counter("hits");
            for (int i = 0; i < 10000; ++i)
                mine.add();
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(c.value(), 40000);
}

TEST(MetricRegistry, SnapshotJsonParsesAndResets)
{
    MetricRegistry registry;
    registry.counter("a.count").add(7);
    registry.gauge("b.gauge").set(2.5);
    registry.histogram("c.hist", 0.0, 10.0, 5).observe(3.0);
    const std::string json = registry.snapshotJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"a.count\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);

    registry.resetValues();
    EXPECT_EQ(registry.counter("a.count").value(), 0);
    EXPECT_DOUBLE_EQ(registry.gauge("b.gauge").value(), 0.0);
    EXPECT_EQ(registry.histogram("c.hist", 0, 1, 1).snapshot().total(),
              0u);
}

TEST(ScopedTimer, RecordsOnlyWhenProfilingEnabled)
{
    TimerStat stat = registry().timer("test.scoped_timer");
    const int64_t callsBefore = stat.calls->value();
    {
        ScopedTimer off(stat);
    }
    EXPECT_EQ(stat.calls->value(), callsBefore);

    setProfilingEnabled(true);
    {
        ScopedTimer on(stat);
    }
    setProfilingEnabled(false);
    EXPECT_EQ(stat.calls->value(), callsBefore + 1);
    EXPECT_GE(stat.nanos->value(), 0);
}

TEST(MetricRegistry, CardinalityCapCollapsesNewSeries)
{
    MetricRegistry registry;
    registry.setMaxSeriesPerMetric(2);
    Counter &a = registry.counter("fleet.events", {{"server", "0"}});
    Counter &b = registry.counter("fleet.events", {{"server", "1"}});
    EXPECT_EQ(registry.droppedSeries(), 0);

    // The cap is reached: further new label sets collapse into the
    // shared overflow cell, one dropped-series bump each.
    Counter &over1 = registry.counter("fleet.events", {{"server", "2"}});
    Counter &over2 = registry.counter("fleet.events", {{"server", "3"}});
    EXPECT_EQ(&over1, &over2);
    EXPECT_NE(&over1, &a);
    EXPECT_NE(&over1, &b);
    EXPECT_EQ(registry.droppedSeries(), 2);

    // Existing series stay individually addressable.
    Counter &aAgain = registry.counter("fleet.events", {{"server", "0"}});
    EXPECT_EQ(&aAgain, &a);
    EXPECT_EQ(registry.droppedSeries(), 2);

    // Other metric names have their own budget.
    registry.counter("other.metric", {{"server", "7"}});
    EXPECT_EQ(registry.droppedSeries(), 2);

    over1.add(5);
    const std::string snapshot = registry.snapshotJson();
    EXPECT_NE(snapshot.find("fleet.events{overflow=true}"),
              std::string::npos);
    EXPECT_NE(snapshot.find("obs.dropped_series_total"),
              std::string::npos);
}

TEST(MetricRegistry, CardinalityCapSpansInstrumentKinds)
{
    MetricRegistry registry;
    registry.setMaxSeriesPerMetric(1);
    registry.counter("mixed", {{"k", "a"}});
    // The same name's budget is shared across instrument kinds, so a
    // gauge under a fresh label set is already over.
    Gauge &g1 = registry.gauge("mixed", {{"k", "b"}});
    Gauge &g2 = registry.gauge("mixed", {{"k", "c"}});
    EXPECT_EQ(&g1, &g2);
    EXPECT_EQ(registry.droppedSeries(), 2);
}

TEST(MetricRegistry, TimerPairAdmitsJointlyAtTheCap)
{
    MetricRegistry registry;
    registry.setMaxSeriesPerMetric(1);
    // Exhaust `t.ns`'s budget while `t.calls` still has room.
    registry.counter("t.ns", {{"k", "a"}});

    // Regression: admitting the halves independently would land
    // `t.calls{k=b}` as a live series while `t.ns{k=b}` collapses into
    // the overflow cell — a split pair whose ns-per-call ratio mixes
    // unrelated series. Joint admission collapses both halves.
    TimerStat split = registry.timer("t", {{"k", "b"}});
    split.calls->add(7);
    split.nanos->add(700);
    EXPECT_EQ(registry.counter("t.calls", {{"overflow", "true"}}).value(),
              7);
    EXPECT_EQ(registry.counter("t.ns", {{"overflow", "true"}}).value(),
              700);
    EXPECT_EQ(registry.droppedSeries(), 2);

    // The live `t.calls` budget was not consumed by the collapse.
    TimerStat fresh = registry.timer("u", {{"k", "a"}});
    EXPECT_NE(fresh.calls, split.calls);
    EXPECT_EQ(registry.droppedSeries(), 2);
}

TEST(MetricRegistry, TimerRefetchReturnsTheSamePair)
{
    MetricRegistry registry;
    registry.setMaxSeriesPerMetric(1);
    TimerStat first = registry.timer("t", {{"k", "a"}});
    TimerStat again = registry.timer("t", {{"k", "a"}});
    EXPECT_EQ(first.calls, again.calls);
    EXPECT_EQ(first.nanos, again.nanos);
    EXPECT_EQ(registry.droppedSeries(), 0);
}

TEST(MetricRegistry, HistogramRefetchIgnoresLayoutArguments)
{
    MetricRegistry registry;
    HistogramMetric &h = registry.histogram("h", 0.0, 10.0, 10);
    // Documented contract: later calls with an existing identity ignore
    // lo/hi/bins — a handle re-fetch with placeholder bounds must not
    // abort (it used to validate before the identity lookup).
    HistogramMetric &again = registry.histogram("h", 0.0, 0.0, 0);
    EXPECT_EQ(&h, &again);
    EXPECT_DOUBLE_EQ(again.hi(), 10.0);
    EXPECT_EQ(again.bins(), 10u);
    // A genuinely new registration still validates its layout.
    EXPECT_THROW(registry.histogram("h2", 1.0, 1.0, 4), ConfigError);
}

TEST(MetricRegistry, UnboundedCapNeverDrops)
{
    MetricRegistry registry;
    registry.setMaxSeriesPerMetric(0);
    for (int i = 0; i < 64; ++i)
        registry.counter("wide", {{"i", std::to_string(i)}});
    EXPECT_EQ(registry.droppedSeries(), 0);
}

TEST(MetricRegistry, ResetValuesClearsDroppedSeries)
{
    MetricRegistry registry;
    registry.setMaxSeriesPerMetric(1);
    registry.counter("w", {{"i", "0"}});
    registry.counter("w", {{"i", "1"}});
    EXPECT_EQ(registry.droppedSeries(), 1);
    registry.resetValues();
    EXPECT_EQ(registry.droppedSeries(), 0);
}

TEST(JsonWriter, EscapesAndFormats)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    EXPECT_EQ(jsonNumber(2.5), "2.5");
    // Strict JSON: non-finite values become null.
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
}

TEST(JsonWriter, LineWriterPreservesInsertionOrder)
{
    JsonLineWriter line;
    line.set("bench", "demo");
    line.set("count", int64_t(3));
    line.set("ok", true);
    line.setRaw("points", "[1, 2]");
    EXPECT_EQ(line.str(),
              "{\"bench\": \"demo\", \"count\": 3, \"ok\": true, "
              "\"points\": [1, 2]}");
}

TEST(JsonWriter, OverwritingKeyKeepsPosition)
{
    JsonLineWriter line;
    line.set("a", 1);
    line.set("b", 2);
    line.set("a", 9);
    EXPECT_EQ(line.str(), "{\"a\": 9, \"b\": 2}");
}

} // namespace
} // namespace agsim::obs
