/**
 * @file
 * Trace-recorder tests: ring-buffer semantics, task attribution, the
 * enable gate, export formats, and the chip instrumentation feeding the
 * recorder its control events.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "chip/chip.h"
#include "common/error.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "pdn/vrm.h"

namespace agsim::obs {
namespace {

TraceEvent
makeEvent(double t, TraceKind kind)
{
    TraceEvent event;
    event.simTime = Seconds{t};
    event.kind = kind;
    return event;
}

/** RAII: clean global obs state around each test using it. */
class ObsReset
{
  public:
    ObsReset() { resetAll(); }
    ~ObsReset() { resetAll(); }
};

TEST(TraceRecorder, KeepsEventsInOrder)
{
    TraceRecorder recorder(8);
    recorder.record(makeEvent(0.1, TraceKind::FirmwareTick));
    recorder.record(makeEvent(0.2, TraceKind::ModeTransition));
    const auto events = recorder.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_DOUBLE_EQ(events[0].simTime, Seconds{0.1});
    EXPECT_EQ(events[1].kind, TraceKind::ModeTransition);
    EXPECT_EQ(recorder.recorded(), 2u);
    EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TraceRecorder, RingDropsOldestWhenFull)
{
    TraceRecorder recorder(4);
    for (int i = 0; i < 10; ++i)
        recorder.record(makeEvent(double(i), TraceKind::Custom));
    const auto events = recorder.events();
    ASSERT_EQ(events.size(), 4u);
    // The newest four survive: t = 6, 7, 8, 9.
    EXPECT_DOUBLE_EQ(events.front().simTime, Seconds{6.0});
    EXPECT_DOUBLE_EQ(events.back().simTime, Seconds{9.0});
    EXPECT_EQ(recorder.recorded(), 10u);
    EXPECT_EQ(recorder.dropped(), 6u);
}

TEST(TraceRecorder, ClearResetsEverything)
{
    TraceRecorder recorder(4);
    for (int i = 0; i < 6; ++i)
        recorder.record(makeEvent(double(i), TraceKind::Custom));
    recorder.clear();
    EXPECT_TRUE(recorder.events().empty());
    EXPECT_EQ(recorder.recorded(), 0u);
    EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TraceRecorder, RejectsZeroCapacity)
{
    EXPECT_THROW(TraceRecorder(0), ConfigError);
}

TEST(ObsGate, EmitIsDroppedWhenTracingDisabled)
{
    ObsReset guard;
    emit(makeEvent(1.0, TraceKind::Custom));
    EXPECT_EQ(trace().recorded(), 0u);

    setTracingEnabled(true);
    emit(makeEvent(2.0, TraceKind::Custom));
    EXPECT_EQ(trace().recorded(), 1u);
}

TEST(ObsGate, TaskIdScopeStampsAndRestores)
{
    ObsReset guard;
    setTracingEnabled(true);
    EXPECT_EQ(currentTaskId(), 0);
    {
        TaskIdScope outer{7};
        EXPECT_EQ(currentTaskId(), 7);
        {
            TaskIdScope inner{9};
            emit(makeEvent(0.5, TraceKind::Custom));
        }
        EXPECT_EQ(currentTaskId(), 7);
    }
    EXPECT_EQ(currentTaskId(), 0);
    ASSERT_EQ(trace().events().size(), 1u);
    EXPECT_EQ(trace().events()[0].task, 9);
}

TEST(TraceExport, ChromeJsonShapeAndSortOrder)
{
    // Deliberately record out of task order: export must sort.
    std::vector<TraceEvent> events;
    TraceEvent late = makeEvent(0.5, TraceKind::FirmwareTick);
    late.task = 1;
    TraceEvent early = makeEvent(0.25, TraceKind::TaskEnd);
    early.task = 0;
    early.duration = Seconds{0.25};
    early.detail = "label \"quoted\"";
    events.push_back(late);
    events.push_back(early);

    const std::string json = chromeTraceJson(events);
    EXPECT_EQ(json.find("{\"traceEvents\": ["), 0u);
    // task 0's span precedes task 1's instant after sorting.
    const size_t spanPos = json.find("\"ph\": \"X\"");
    const size_t instantPos = json.find("\"ph\": \"i\"");
    ASSERT_NE(spanPos, std::string::npos);
    ASSERT_NE(instantPos, std::string::npos);
    EXPECT_LT(spanPos, instantPos);
    // Microsecond timestamps and escaped details.
    EXPECT_NE(json.find("\"ts\": 250000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 250000"), std::string::npos);
    EXPECT_NE(json.find("label \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"firmware_tick\""),
              std::string::npos);
}

TEST(TraceExport, JsonlOneRecordPerLine)
{
    std::vector<TraceEvent> events;
    events.push_back(makeEvent(0.1, TraceKind::ModeTransition));
    events.push_back(makeEvent(0.2, TraceKind::SafetyDemotion));
    const std::string jsonl = traceJsonl(events);
    EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
    EXPECT_NE(jsonl.find("\"kind\": \"mode_transition\""),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"kind\": \"safety_demotion\""),
              std::string::npos);
}

TEST(ChipTracing, EmitsControlEvents)
{
    ObsReset guard;
    setTracingEnabled(true);

    pdn::Vrm vrm(1);
    chip::ChipConfig config;
    config.undervolt.maxUndervolt = Volts{0.120};
    config.safety.maxRearms = 0;
    chip::Chip c(config, &vrm);
    c.setMode(chip::GuardbandMode::AdaptiveUndervolt);
    for (size_t i = 0; i < c.coreCount(); ++i)
        c.setLoad(i, chip::CoreLoad::running(1.0, Volts{13.0e-3}, Volts{24.0e-3}));
    c.settle(Seconds{0.5}, Seconds{1e-3});

    // An optimistic CPM lie drives the firmware under vmin; the safety
    // monitor must demote — all of it visible in the trace.
    fault::FaultPlan plan;
    plan.cpmOptimisticBias(Seconds{0.05}, Seconds{0.0}, Volts{0.040});
    fault::FaultInjector injector(plan, c.coreCount());
    c.attachFaultInjector(&injector);
    for (int i = 0; i < 4000 && !c.safetyDemoted(); ++i)
        c.step(Seconds{1e-3});
    ASSERT_TRUE(c.safetyDemoted());

    bool sawMode = false, sawTick = false, sawFault = false,
         sawDemotion = false;
    Seconds lastTime = Seconds{-1.0};
    for (const auto &event : trace().events()) {
        sawMode |= event.kind == TraceKind::ModeTransition;
        sawTick |= event.kind == TraceKind::FirmwareTick;
        sawFault |= event.kind == TraceKind::FaultChange;
        sawDemotion |= event.kind == TraceKind::SafetyDemotion;
        // Single chip, single thread: sim-time stamps never rewind.
        EXPECT_GE(event.simTime, lastTime);
        lastTime = event.simTime;
    }
    EXPECT_TRUE(sawMode);
    EXPECT_TRUE(sawTick);
    EXPECT_TRUE(sawFault);
    EXPECT_TRUE(sawDemotion);

    // The always-on counters tracked the same story.
    EXPECT_GT(registry()
                  .counter("chip.safety.demotions", {{"socket", "0"}})
                  .value(),
              0);
    EXPECT_GT(registry()
                  .counter("chip.firmware.ticks", {{"socket", "0"}})
                  .value(),
              0);
}

} // namespace
} // namespace agsim::obs
