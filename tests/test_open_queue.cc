/**
 * @file
 * ServerQueueModel tests: deterministic fluid-queue accounting —
 * admission capping, frequency-scaled drain with fractional carry,
 * Little's-law latency, and drain-and-migrate backlog handoff.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "qos/open_queue.h"

namespace agsim::qos {
namespace {

constexpr Seconds kDt{0.01};

TEST(OpenQueue, AdmitsUpToDepthCapAndSheds)
{
    OpenQueueParams params;
    params.maxDepth = 100;
    params.serviceRatePerCore = 500.0;
    ServerQueueModel queue(params);

    // No capacity: everything admitted piles up, overflow sheds.
    QueueStepResult r1 = queue.step(kDt, 80, 0.0);
    EXPECT_EQ(r1.admitted, 80u);
    EXPECT_EQ(r1.shed, 0u);
    EXPECT_EQ(r1.completed, 0u);
    EXPECT_EQ(queue.depth(), 80u);

    QueueStepResult r2 = queue.step(kDt, 50, 0.0);
    EXPECT_EQ(r2.admitted, 20u);
    EXPECT_EQ(r2.shed, 30u);
    EXPECT_EQ(queue.depth(), 100u);
    EXPECT_EQ(queue.totalShed(), 30u);
}

TEST(OpenQueue, DrainsAtFrequencyScaledRate)
{
    OpenQueueParams params;
    params.serviceRatePerCore = 1000.0;
    params.maxDepth = 100000;
    ServerQueueModel queue(params);

    // 4 cores at nominal frequency: 4000/s * 0.01s = 40 per step.
    queue.step(kDt, 500, 4.0);
    // depth 500 admitted then 40 completed.
    EXPECT_EQ(queue.depth(), 460u);
    QueueStepResult r = queue.step(kDt, 0, 4.0);
    EXPECT_EQ(r.completed, 40u);
}

TEST(OpenQueue, FrequencyScaleFollowsMemoryBoundednessLaw)
{
    OpenQueueParams params;
    params.nominalFrequency = Hertz{4.0e9};
    params.memoryBoundedness = 0.25;
    ServerQueueModel queue(params);
    // At nominal: scale 1. At half clock: (1-mb)*0.5 + mb.
    EXPECT_NEAR(queue.frequencyScale(Hertz{4.0e9}), 1.0, 1e-12);
    EXPECT_NEAR(queue.frequencyScale(Hertz{2.0e9}), 0.625, 1e-12);
    EXPECT_EQ(queue.frequencyScale(Hertz{0.0}), 0.0);
}

TEST(OpenQueue, FractionalCarryKeepsLongRunThroughputExact)
{
    OpenQueueParams params;
    params.serviceRatePerCore = 130.0; // 1.3 completions per step
    params.maxDepth = 100000;
    ServerQueueModel queue(params);
    queue.step(kDt, 1000, 1.0);
    for (int k = 0; k < 99; ++k)
        queue.step(kDt, 0, 1.0);
    // 100 steps * 1.3/step = 130 exactly, carry included.
    EXPECT_EQ(queue.totalCompleted(), 130u);
}

TEST(OpenQueue, IdleServerDoesNotBankCapacity)
{
    OpenQueueParams params;
    params.serviceRatePerCore = 50.0; // 0.5 per step
    params.maxDepth = 1000;
    ServerQueueModel queue(params);
    // Empty queue for many steps: carry must not accumulate.
    for (int k = 0; k < 50; ++k)
        queue.step(kDt, 0, 1.0);
    QueueStepResult r = queue.step(kDt, 10, 1.0);
    // First loaded step: at most floor(0.5 + residual<1) = 0 or 1,
    // never the 25 that banked capacity would allow.
    EXPECT_LE(r.completed, 1u);
}

TEST(OpenQueue, LatencyGrowsWithBacklog)
{
    OpenQueueParams params;
    params.serviceRatePerCore = 1000.0;
    params.maxDepth = 100000;
    ServerQueueModel shallow(params);
    ServerQueueModel deep(params);
    deep.step(kDt, 5000, 0.0); // preload a backlog

    QueueStepResult a = shallow.step(kDt, 10, 1.0);
    QueueStepResult b = deep.step(kDt, 10, 1.0);
    ASSERT_GT(a.completed, 0u);
    ASSERT_GT(b.completed, 0u);
    EXPECT_GT(b.meanLatency.value(), a.meanLatency.value());
}

TEST(OpenQueue, TakeBacklogDrainsEverything)
{
    ServerQueueModel queue;
    queue.step(kDt, 300, 0.0);
    EXPECT_EQ(queue.takeBacklog(), 300u);
    EXPECT_EQ(queue.depth(), 0u);
    EXPECT_EQ(queue.takeBacklog(), 0u);
}

TEST(OpenQueue, DeterministicAcrossInstances)
{
    OpenQueueParams params;
    params.serviceRatePerCore = 777.0;
    ServerQueueModel a(params);
    ServerQueueModel b(params);
    for (int k = 0; k < 200; ++k) {
        const uint64_t arrivals = uint64_t((k * 37) % 90);
        const double scale = 1.0 + 0.5 * double(k % 3);
        QueueStepResult ra = a.step(kDt, arrivals, scale);
        QueueStepResult rb = b.step(kDt, arrivals, scale);
        EXPECT_EQ(ra.admitted, rb.admitted);
        EXPECT_EQ(ra.completed, rb.completed);
        EXPECT_EQ(ra.shed, rb.shed);
        EXPECT_EQ(ra.meanLatency.value(), rb.meanLatency.value());
    }
    EXPECT_EQ(a.depth(), b.depth());
}

TEST(OpenQueue, ValidationRejectsNonsense)
{
    OpenQueueParams params;
    params.serviceRatePerCore = 0.0;
    EXPECT_THROW(ServerQueueModel{params}, ConfigError);
    params = OpenQueueParams();
    params.memoryBoundedness = 1.5;
    EXPECT_THROW(ServerQueueModel{params}, ConfigError);
    params = OpenQueueParams();
    params.maxDepth = 0;
    EXPECT_THROW(ServerQueueModel{params}, ConfigError);
    params = OpenQueueParams();
    params.nominalFrequency = Hertz{0.0};
    EXPECT_THROW(ServerQueueModel{params}, ConfigError);
}

} // namespace
} // namespace agsim::qos
