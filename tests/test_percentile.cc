/**
 * @file
 * Percentile tests: exact tracker semantics and P² accuracy sweeps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "stats/percentile.h"

namespace agsim::stats {
namespace {

TEST(PercentileTracker, EmptyReturnsZero)
{
    PercentileTracker tracker;
    EXPECT_TRUE(tracker.empty());
    EXPECT_DOUBLE_EQ(tracker.percentile(90.0), 0.0);
}

TEST(PercentileTracker, SingleSample)
{
    PercentileTracker tracker;
    tracker.add(7.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(50.0), 7.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(100.0), 7.0);
}

TEST(PercentileTracker, InterpolatesBetweenOrderStatistics)
{
    PercentileTracker tracker;
    for (double x : {10.0, 20.0, 30.0, 40.0, 50.0})
        tracker.add(x);
    EXPECT_DOUBLE_EQ(tracker.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(100.0), 50.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(50.0), 30.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(25.0), 20.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(90.0), 46.0);
}

TEST(PercentileTracker, UnsortedInsertionOrderIrrelevant)
{
    PercentileTracker a, b;
    std::vector<double> values{5, 1, 9, 3, 7, 2, 8, 4, 6};
    for (double v : values)
        a.add(v);
    std::sort(values.begin(), values.end());
    for (double v : values)
        b.add(v);
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0})
        EXPECT_DOUBLE_EQ(a.percentile(p), b.percentile(p));
}

TEST(PercentileTracker, QueriesInterleavedWithInserts)
{
    PercentileTracker tracker;
    tracker.add(1.0);
    tracker.add(2.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(100.0), 2.0);
    tracker.add(10.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(100.0), 10.0);
}

TEST(PercentileTracker, OutOfRangePercentileThrows)
{
    PercentileTracker tracker;
    tracker.add(1.0);
    EXPECT_THROW(tracker.percentile(-1.0), ConfigError);
    EXPECT_THROW(tracker.percentile(101.0), ConfigError);
}

TEST(PercentileTracker, ClearEmpties)
{
    PercentileTracker tracker;
    tracker.add(1.0);
    tracker.clear();
    EXPECT_TRUE(tracker.empty());
}

TEST(P2Quantile, RejectsDegenerateQuantiles)
{
    EXPECT_THROW(P2Quantile(0.0), ConfigError);
    EXPECT_THROW(P2Quantile(1.0), ConfigError);
}

TEST(P2Quantile, ExactForFewSamples)
{
    P2Quantile q(0.5);
    q.add(3.0);
    q.add(1.0);
    q.add(2.0);
    EXPECT_DOUBLE_EQ(q.value(), 2.0);
}

/** P² must track the exact quantile within a few percent. */
class P2AccuracyTest
    : public ::testing::TestWithParam<std::tuple<double, int>>
{
};

TEST_P(P2AccuracyTest, TracksExactQuantile)
{
    const double quantile = std::get<0>(GetParam());
    const int n = std::get<1>(GetParam());

    Rng rng(99);
    P2Quantile streaming(quantile);
    PercentileTracker exact;
    for (int i = 0; i < n; ++i) {
        // Mildly skewed distribution, like latency samples.
        const double x = std::exp(rng.normal(0.0, 0.5));
        streaming.add(x);
        exact.add(x);
    }
    const double truth = exact.percentile(quantile * 100.0);
    EXPECT_NEAR(streaming.value(), truth, truth * 0.05)
        << "quantile=" << quantile << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    QuantileSweep, P2AccuracyTest,
    ::testing::Combine(::testing::Values(0.5, 0.9, 0.95, 0.99),
                       ::testing::Values(1000, 10000, 100000)));

} // namespace
} // namespace agsim::stats
