/**
 * @file
 * Workload-phase tests: phase arithmetic, phased simulation behaviour,
 * and the firmware's dynamic tracking of phase changes.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "system/simulation.h"
#include "workload/library.h"
#include "workload/profile.h"

namespace agsim::workload {
namespace {

TEST(Phases, SteadyProfileReturnsUnitScales)
{
    const auto &profile = byName("raytrace");
    EXPECT_TRUE(profile.phases.empty());
    EXPECT_DOUBLE_EQ(profile.phaseAt(Seconds{0.0}).intensityScale, 1.0);
    EXPECT_DOUBLE_EQ(profile.phaseAt(Seconds{123.4}).rateScale, 1.0);
    EXPECT_DOUBLE_EQ(profile.phaseCycleLength(), Seconds{0.0});
}

TEST(Phases, MakePhasedBuildsTwoPhases)
{
    const auto phased = makePhased(byName("raytrace"), Seconds{1.0}, 0.25, 1.3,
                                   0.5);
    ASSERT_EQ(phased.phases.size(), 2u);
    EXPECT_NEAR(phased.phaseCycleLength(), Seconds{1.0}, Seconds{1e-12});
    EXPECT_DOUBLE_EQ(phased.phases[0].duration, Seconds{0.25});
    EXPECT_DOUBLE_EQ(phased.phases[0].intensityScale, 1.3);
    EXPECT_DOUBLE_EQ(phased.phases[1].intensityScale, 0.5);
    EXPECT_EQ(phased.name, "raytrace-phased");
}

TEST(Phases, PhaseAtCyclesThroughTime)
{
    const auto phased = makePhased(byName("raytrace"), Seconds{1.0}, 0.25, 1.3,
                                   0.5);
    EXPECT_DOUBLE_EQ(phased.phaseAt(Seconds{0.10}).intensityScale, 1.3);
    EXPECT_DOUBLE_EQ(phased.phaseAt(Seconds{0.30}).intensityScale, 0.5);
    EXPECT_DOUBLE_EQ(phased.phaseAt(Seconds{0.99}).intensityScale, 0.5);
    // Next cycle wraps back into the high phase.
    EXPECT_DOUBLE_EQ(phased.phaseAt(Seconds{1.10}).intensityScale, 1.3);
    EXPECT_DOUBLE_EQ(phased.phaseAt(Seconds{42.05}).intensityScale, 1.3);
}

TEST(Phases, Validation)
{
    EXPECT_THROW(makePhased(byName("raytrace"), Seconds{0.0}, 0.5, 1.2, 0.5),
                 ConfigError);
    EXPECT_THROW(makePhased(byName("raytrace"), Seconds{1.0}, 0.0, 1.2, 0.5),
                 ConfigError);
    EXPECT_THROW(makePhased(byName("raytrace"), Seconds{1.0}, 1.0, 1.2, 0.5),
                 ConfigError);
    // Phased intensity above the 2.0 ceiling rejected.
    EXPECT_THROW(makePhased(byName("lu_ncb"), Seconds{1.0}, 0.5, 1.9, 0.5),
                 ConfigError);
    BenchmarkProfile bad = byName("raytrace");
    bad.phases = {WorkloadPhase{Seconds{1.0}, -0.5, 1.0}};
    EXPECT_THROW(bad.validate(), ConfigError);
}

TEST(Phases, PhasedRunAveragesPower)
{
    // A 60/40 high/low phased run must land between the two steady
    // extremes in mean power.
    using namespace agsim::system;
    auto measure = [](const BenchmarkProfile &profile) {
        Server server;
        server.setMode(chip::GuardbandMode::StaticGuardband);
        WorkloadSimulation sim(&server);
        sim.addJob(Job{ThreadedWorkload(profile, RunMode::Rate),
                       placeOnSocket(0, 8), profile.name});
        SimulationConfig config;
        config.measureDuration = Seconds{1.2};
        config.warmup = Seconds{0.6};
        return sim.run(config).socketPower[0];
    };

    BenchmarkProfile high = byName("raytrace");
    high.intensity *= 1.2;
    BenchmarkProfile low = byName("raytrace");
    low.intensity *= 0.6;
    const auto phased = makePhased(byName("raytrace"), Seconds{0.3}, 0.5, 1.2,
                                   0.6);
    const Watts highPower = measure(high);
    const Watts lowPower = measure(low);
    const Watts phasedPower = measure(phased);
    EXPECT_GT(phasedPower, lowPower + Watts{2.0});
    EXPECT_LT(phasedPower, highPower - Watts{2.0});
}

TEST(Phases, FirmwareTracksSlowPhases)
{
    // With multi-second phases the undervolting firmware re-converges
    // inside each phase, so the undervolt must swing between phases:
    // its range over time exceeds what a steady run shows.
    using namespace agsim::system;
    auto undervoltRange = [](const BenchmarkProfile &profile) {
        Server server;
        server.setMode(chip::GuardbandMode::AdaptiveUndervolt);
        WorkloadSimulation sim(&server);
        sim.addJob(Job{ThreadedWorkload(profile, RunMode::Rate),
                       placeOnSocket(0, 8), profile.name});
        SimulationConfig config;
        config.warmup = Seconds{1.2};
        config.measureDuration = Seconds{6.0};
        sim.run(config);
        // Range of the setpoint across telemetry windows.
        Volts lo = Volts{10.0}, hi = Volts{0.0};
        for (const auto &w : server.chip(0).telemetry().windows()) {
            lo = std::min(lo, w.meanSetpoint);
            hi = std::max(hi, w.meanSetpoint);
        }
        return hi - lo;
    };

    const auto phased = makePhased(byName("raytrace"), Seconds{6.0}, 0.5, 1.2,
                                   0.55);
    const Volts steadyRange = undervoltRange(byName("raytrace"));
    const Volts phasedRange = undervoltRange(phased);
    EXPECT_GT(phasedRange, steadyRange + Volts{0.010});
}

TEST(Phases, RateScaleAffectsThroughput)
{
    using namespace agsim::system;
    auto throughput = [](const BenchmarkProfile &profile) {
        Server server;
        server.setMode(chip::GuardbandMode::StaticGuardband);
        WorkloadSimulation sim(&server);
        sim.addJob(Job{ThreadedWorkload(profile, RunMode::Rate),
                       placeOnSocket(0, 4), profile.name});
        SimulationConfig config;
        config.measureDuration = Seconds{1.0};
        config.warmup = Seconds{0.4};
        return sim.run(config).jobs[0].meanRate;
    };
    const auto phased = makePhased(byName("gcc"), Seconds{0.2}, 0.5, 1.0, 0.5);
    // Half the time at half rate: ~25% lower throughput than steady.
    const double ratio = throughput(phased) / throughput(byName("gcc"));
    EXPECT_NEAR(ratio, 0.75, 0.05);
}

} // namespace
} // namespace agsim::workload
