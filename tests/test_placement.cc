/**
 * @file
 * Placement-plan tests: consolidation vs loadline borrowing.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "core/placement.h"

namespace agsim::core {
namespace {

size_t
threadsOnSocket(const PlacementPlan &plan, size_t socket)
{
    size_t count = 0;
    for (const auto &t : plan.threads)
        count += t.socket == socket ? 1 : 0;
    return count;
}

TEST(Placement, ConsolidateFillsOneSocket)
{
    const auto plan = makePlacementPlan(PlacementPolicy::Consolidate, 2, 8,
                                        8, 8);
    EXPECT_EQ(plan.threads.size(), 8u);
    EXPECT_EQ(threadsOnSocket(plan, 0), 8u);
    EXPECT_EQ(threadsOnSocket(plan, 1), 0u);
    // Socket 1 is entirely gated; socket 0 has no spare powered cores.
    EXPECT_EQ(plan.gatedCores.size(), 8u);
    EXPECT_TRUE(plan.idleCores.empty());
    for (const auto &[socket, core] : plan.gatedCores)
        EXPECT_EQ(socket, 1u) << core;
}

TEST(Placement, BorrowBalancesSockets)
{
    const auto plan = makePlacementPlan(PlacementPolicy::LoadlineBorrow, 2,
                                        8, 8, 8);
    EXPECT_EQ(threadsOnSocket(plan, 0), 4u);
    EXPECT_EQ(threadsOnSocket(plan, 1), 4u);
    EXPECT_EQ(plan.gatedCores.size(), 8u);
    size_t gatedOnSocket0 = 0;
    for (const auto &[socket, core] : plan.gatedCores)
        gatedOnSocket0 += socket == 0 ? 1 : 0;
    EXPECT_EQ(gatedOnSocket0, 4u);
}

TEST(Placement, PartialLoadLeavesIdleReserve)
{
    // The paper's scenario: 8 of 16 cores on, fewer threads than budget.
    const auto cons = makePlacementPlan(PlacementPolicy::Consolidate, 2, 8,
                                        2, 8);
    EXPECT_EQ(threadsOnSocket(cons, 0), 2u);
    EXPECT_EQ(cons.idleCores.size(), 6u); // 6 powered idle on socket 0
    EXPECT_EQ(cons.gatedCores.size(), 8u);

    const auto borrow = makePlacementPlan(PlacementPolicy::LoadlineBorrow,
                                          2, 8, 2, 8);
    EXPECT_EQ(threadsOnSocket(borrow, 0), 1u);
    EXPECT_EQ(threadsOnSocket(borrow, 1), 1u);
    EXPECT_EQ(borrow.idleCores.size(), 6u); // 3 per socket
    EXPECT_EQ(borrow.gatedCores.size(), 8u);
}

TEST(Placement, OddThreadCountsBalanceWithinOne)
{
    const auto plan = makePlacementPlan(PlacementPolicy::LoadlineBorrow, 2,
                                        8, 5, 8);
    const size_t s0 = threadsOnSocket(plan, 0);
    const size_t s1 = threadsOnSocket(plan, 1);
    EXPECT_EQ(s0 + s1, 5u);
    EXPECT_LE(s0 > s1 ? s0 - s1 : s1 - s0, 1u);
}

TEST(Placement, EveryCoreAccountedExactlyOnce)
{
    for (auto policy : {PlacementPolicy::Consolidate,
                        PlacementPolicy::LoadlineBorrow}) {
        const auto plan = makePlacementPlan(policy, 2, 8, 3, 10);
        std::set<std::pair<size_t, size_t>> seen;
        for (const auto &t : plan.threads)
            EXPECT_TRUE(seen.insert({t.socket, t.core}).second);
        for (const auto &c : plan.idleCores)
            EXPECT_TRUE(seen.insert(c).second);
        for (const auto &c : plan.gatedCores)
            EXPECT_TRUE(seen.insert(c).second);
        EXPECT_EQ(seen.size(), 16u);
    }
}

TEST(Placement, BudgetSpillsToSecondSocketWhenConsolidating)
{
    const auto plan = makePlacementPlan(PlacementPolicy::Consolidate, 2, 8,
                                        10, 12);
    EXPECT_EQ(threadsOnSocket(plan, 0), 8u);
    EXPECT_EQ(threadsOnSocket(plan, 1), 2u);
    EXPECT_EQ(plan.idleCores.size(), 2u);
    EXPECT_EQ(plan.gatedCores.size(), 4u);
}

TEST(Placement, FourSocketBorrow)
{
    const auto plan = makePlacementPlan(PlacementPolicy::LoadlineBorrow, 4,
                                        8, 8, 16);
    for (size_t s = 0; s < 4; ++s)
        EXPECT_EQ(threadsOnSocket(plan, s), 2u);
}

TEST(Placement, Validation)
{
    EXPECT_THROW(makePlacementPlan(PlacementPolicy::Consolidate, 0, 8, 1,
                                   1), ConfigError);
    EXPECT_THROW(makePlacementPlan(PlacementPolicy::Consolidate, 2, 8, 0,
                                   8), ConfigError);
    // Budget below thread count.
    EXPECT_THROW(makePlacementPlan(PlacementPolicy::Consolidate, 2, 8, 6,
                                   4), ConfigError);
    // Budget above machine.
    EXPECT_THROW(makePlacementPlan(PlacementPolicy::Consolidate, 2, 8, 4,
                                   20), ConfigError);
}

TEST(Placement, PolicyNames)
{
    EXPECT_STREQ(placementPolicyName(PlacementPolicy::Consolidate),
                 "consolidate");
    EXPECT_STREQ(placementPolicyName(PlacementPolicy::LoadlineBorrow),
                 "loadline-borrow");
}

} // namespace
} // namespace agsim::core
