/**
 * @file
 * Power-capping governor tests, including the capped-chip integration
 * behaviour (the EnergyScale-style extension).
 */

#include <gtest/gtest.h>

#include "chip/chip.h"
#include "chip/power_cap.h"
#include "common/error.h"
#include "common/units.h"
#include "pdn/vrm.h"

namespace agsim::chip {
namespace {

using namespace agsim::units;

TEST(PowerCap, QuantizesToDvfsGrid)
{
    PowerCapController governor;
    EXPECT_DOUBLE_EQ(governor.quantize(Hertz{4.2e9}), Hertz{4.2e9});
    EXPECT_DOUBLE_EQ(governor.quantize(Hertz{2.8e9}), Hertz{2.8e9});
    // Between grid points: snaps down.
    const Hertz snapped = governor.quantize(Hertz{4.2e9 - 10e6});
    EXPECT_NEAR(snapped, Hertz{4.2e9 - 28e6}, Hertz{1.0});
    // Outside the window: clamps.
    EXPECT_DOUBLE_EQ(governor.quantize(Hertz{1.0e9}), Hertz{2.8e9});
    EXPECT_DOUBLE_EQ(governor.quantize(Hertz{9.9e9}), Hertz{4.2e9});
}

TEST(PowerCap, StepsDownWhenOverCap)
{
    PowerCapController governor;
    const Hertz next = governor.decide(4.2_GHz, Watts{130.0}, Watts{110.0});
    EXPECT_NEAR(next, Hertz{4.2e9 - 28e6}, Hertz{1.0});
}

TEST(PowerCap, StepsUpWithSlack)
{
    PowerCapController governor;
    const Hertz next = governor.decide(3.5_GHz, Watts{80.0}, Watts{110.0});
    EXPECT_NEAR(next, Hertz{3.5e9 + 28e6}, Hertz{2e6});
}

TEST(PowerCap, HoldsInsideHysteresisBand)
{
    PowerCapController governor;
    // Power just under the cap (within the raise hysteresis): hold.
    const Watts cap = Watts{110.0};
    const Watts justUnder = cap * (1.0 - 0.01);
    const Hertz f = governor.quantize(Hertz{3.8e9});
    EXPECT_DOUBLE_EQ(governor.decide(f, justUnder, cap), f);
}

TEST(PowerCap, RespectsWindowEdges)
{
    PowerCapController governor;
    EXPECT_DOUBLE_EQ(governor.decide(2.8_GHz, Watts{200.0}, Watts{100.0}), Hertz{2.8e9});
    EXPECT_DOUBLE_EQ(governor.decide(4.2_GHz, Watts{10.0}, Watts{100.0}), Hertz{4.2e9});
}

TEST(PowerCap, RejectsBadInput)
{
    PowerCapParams params;
    params.frequencyStep = Hertz{0.0};
    EXPECT_THROW(PowerCapController{params}, ConfigError);

    params = PowerCapParams();
    params.maxFrequency = params.minFrequency;
    EXPECT_THROW(PowerCapController{params}, ConfigError);

    PowerCapController governor;
    EXPECT_THROW(governor.decide(Hertz{4.2e9}, Watts{100.0}, Watts{0.0}), ConfigError);
}

TEST(PowerCap, CapsARealChipUnderLoad)
{
    // Integration: govern the DVFS target every firmware interval and
    // check the chip converges under the cap with a lower frequency.
    pdn::Vrm vrm(1);
    Chip chip(ChipConfig(), &vrm);
    chip.setMode(GuardbandMode::AdaptiveUndervolt);
    for (size_t i = 0; i < 8; ++i)
        chip.setLoad(i, CoreLoad::running(1.1, 13.0_mV, 24.0_mV));
    chip.settle(Seconds{1.0});
    const Watts uncapped = chip.power();
    ASSERT_GT(uncapped, Watts{100.0});

    const Watts cap = uncapped - Watts{20.0};
    PowerCapController governor;
    for (int interval = 0; interval < 120; ++interval) {
        chip.settle(Seconds{0.032});
        const Hertz next = governor.decide(chip.targetFrequency(),
                                           chip.power(), cap);
        if (next != chip.targetFrequency())
            chip.setTargetFrequency(next);
    }
    chip.settle(Seconds{1.0});
    EXPECT_LE(chip.power(), cap * 1.03);
    EXPECT_LT(chip.targetFrequency(), Hertz{4.2e9});
    EXPECT_GE(chip.targetFrequency(), Hertz{2.8e9});
}

TEST(PowerCap, AdaptiveGuardbandingRaisesCappedFrequency)
{
    // The extension's headline: under the same power cap, undervolting
    // affords a higher DVFS point than the static guardband.
    // The governor must run slower than the undervolting walk: a
    // target change resets the VRM to the static setpoint, and the
    // firmware needs ~0.5 s to reclaim the guardband before the power
    // reading is meaningful again.
    auto cappedFrequency = [](GuardbandMode mode) {
        pdn::Vrm vrm(1);
        Chip chip(ChipConfig(), &vrm);
        chip.setMode(mode);
        for (size_t i = 0; i < 8; ++i)
            chip.setLoad(i, CoreLoad::running(1.1, 13.0_mV, 24.0_mV));
        PowerCapController governor;
        const Watts cap = Watts{105.0};
        for (int interval = 0; interval < 40; ++interval) {
            chip.settle(Seconds{0.6});
            const Hertz next = governor.decide(chip.targetFrequency(),
                                               chip.power(), cap);
            if (next != chip.targetFrequency())
                chip.setTargetFrequency(next);
        }
        chip.settle(Seconds{1.0});
        return chip.targetFrequency();
    };
    const Hertz capped = cappedFrequency(GuardbandMode::StaticGuardband);
    const Hertz adaptive = cappedFrequency(
        GuardbandMode::AdaptiveUndervolt);
    EXPECT_GT(adaptive, capped + Hertz{50e6});
}

} // namespace
} // namespace agsim::chip
