/**
 * @file
 * Core power model tests: scaling laws, leakage behaviour, gating.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "power/core_power_model.h"

namespace agsim::power {
namespace {

using namespace agsim::units;

TEST(CorePowerModel, DynamicAtReferencePoint)
{
    CorePowerModel model;
    const auto &p = model.params();
    EXPECT_NEAR(model.coreDynamic(p.refVoltage, p.refFrequency, 1.0),
                p.coreDynamicAtRef, 1e-9);
}

TEST(CorePowerModel, DynamicQuadraticInVoltage)
{
    CorePowerModel model;
    const auto &p = model.params();
    const Watts base = model.coreDynamic(Volts{1.0}, p.refFrequency, 1.0);
    const Watts doubled = model.coreDynamic(Volts{2.0}, p.refFrequency, 1.0);
    EXPECT_NEAR(doubled / base, 4.0, 1e-9);
}

TEST(CorePowerModel, DynamicLinearInFrequencyAndActivity)
{
    CorePowerModel model;
    const auto &p = model.params();
    const Watts base = model.coreDynamic(p.refVoltage, Hertz{2.0e9}, 0.5);
    EXPECT_NEAR(model.coreDynamic(p.refVoltage, Hertz{4.0e9}, 0.5) / base, 2.0,
                1e-9);
    EXPECT_NEAR(model.coreDynamic(p.refVoltage, Hertz{2.0e9}, 1.0) / base, 2.0,
                1e-9);
}

TEST(CorePowerModel, ZeroActivityZeroDynamic)
{
    CorePowerModel model;
    EXPECT_DOUBLE_EQ(model.coreDynamic(Volts{1.2}, Hertz{4.2e9}, 0.0), Watts{0.0});
}

TEST(CorePowerModel, LeakageAtReference)
{
    CorePowerModel model;
    const auto &p = model.params();
    EXPECT_NEAR(model.coreLeakage(p.refVoltage, p.refTemperature, false),
                p.coreLeakageAtRef, 1e-9);
}

TEST(CorePowerModel, LeakageDoublesPerTemperatureStep)
{
    CorePowerModel model;
    const auto &p = model.params();
    const Watts cold = model.coreLeakage(p.refVoltage, p.refTemperature,
                                         false);
    const Watts hot = model.coreLeakage(
        p.refVoltage, p.refTemperature + p.leakageDoublingTemp, false);
    EXPECT_NEAR(hot / cold, 2.0, 1e-9);
}

TEST(CorePowerModel, LeakageVoltageExponent)
{
    CorePowerModel model;
    const auto &p = model.params();
    const Watts lo = model.coreLeakage(p.refVoltage * 0.9,
                                       p.refTemperature, false);
    const Watts hi = model.coreLeakage(p.refVoltage, p.refTemperature,
                                       false);
    // V^3 law: 0.9^3 = 0.729.
    EXPECT_NEAR(lo / hi, 0.729, 1e-3);
}

TEST(CorePowerModel, GatingRemovesNearlyAllLeakage)
{
    CorePowerModel model;
    const auto &p = model.params();
    const Watts on = model.coreLeakage(p.refVoltage, p.refTemperature,
                                       false);
    const Watts gated = model.coreLeakage(p.refVoltage, p.refTemperature,
                                          true);
    EXPECT_NEAR(gated / on, p.gatedLeakageFraction, 1e-9);
    EXPECT_LT(gated, Watts{0.2});
}

TEST(CorePowerModel, UncoreScalesWithVoltage)
{
    CorePowerModel model;
    const auto &p = model.params();
    EXPECT_NEAR(model.uncore(p.refVoltage, p.refTemperature),
                p.uncoreAtRef, 1e-9);
    EXPECT_LT(model.uncore(p.refVoltage * 0.9, p.refTemperature),
              p.uncoreAtRef);
}

TEST(CorePowerModel, SingleSocketEnvelopeMatchesPaper)
{
    // Fig. 3a: one active core ~60 W, eight active ~130-140 W for a
    // raytrace-class workload at the static 1.2 V / 4.2 GHz point
    // (before PDN dissipation, which the chip model adds).
    CorePowerModel model;
    const Volts v = Volts{1.18}; // roughly the on-chip voltage under load
    const Celsius t = Celsius{36.0};
    const double intensity = 1.03;

    const Watts idleCore = model.coreDynamic(v, Hertz{4.2e9},
                                             model.idleActivity()) +
                           model.coreLeakage(v, t, false);
    const Watts busyCore = model.coreDynamic(v, Hertz{4.2e9}, intensity) +
                           model.coreLeakage(v, t, false);
    const Watts uncore = model.uncore(v, t);

    const Watts oneActive = uncore + busyCore + 7 * idleCore;
    const Watts eightActive = uncore + 8 * busyCore;
    EXPECT_GT(oneActive, Watts{50.0});
    EXPECT_LT(oneActive, Watts{72.0});
    EXPECT_GT(eightActive, Watts{115.0});
    EXPECT_LT(eightActive, Watts{145.0});
}

TEST(CorePowerModel, RejectsBadParams)
{
    PowerModelParams params;
    params.refVoltage = Volts{0.0};
    EXPECT_THROW(CorePowerModel{params}, ConfigError);

    params = PowerModelParams();
    params.gatedLeakageFraction = 1.5;
    EXPECT_THROW(CorePowerModel{params}, ConfigError);

    params = PowerModelParams();
    params.coreDynamicAtRef = -Watts{1.0};
    EXPECT_THROW(CorePowerModel{params}, ConfigError);
}

TEST(CorePowerModel, NegativeActivityPanics)
{
    CorePowerModel model;
    EXPECT_THROW(model.coreDynamic(Volts{1.2}, Hertz{4.2e9}, -0.1), InternalError);
}

} // namespace
} // namespace agsim::power
