/**
 * @file
 * Power-proxy tests: estimation accuracy across load levels and
 * proxy-driven power capping.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "chip/chip.h"
#include "chip/power_cap.h"
#include "chip/power_proxy.h"
#include "common/error.h"
#include "common/units.h"
#include "pdn/vrm.h"

namespace agsim::chip {
namespace {

using namespace agsim::units;

class PowerProxyTest : public ::testing::Test
{
  protected:
    PowerProxyTest() : vrm_(1), chip_(ChipConfig(), &vrm_) {}

    pdn::Vrm vrm_;
    Chip chip_;
    PowerProxy proxy_;
};

TEST_F(PowerProxyTest, TracksTruePowerAcrossLoadLevels)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    for (size_t active : {0ul, 1ul, 2ul, 4ul, 6ul, 8ul}) {
        chip_.clearLoads();
        for (size_t i = 0; i < active; ++i)
            chip_.setLoad(i, CoreLoad::running(1.0, 13.0_mV, 24.0_mV));
        chip_.settle(Seconds{0.3});
        const Watts truth = chip_.power();
        const Watts estimate = proxy_.estimate(chip_);
        EXPECT_NEAR(estimate, truth, truth * 0.15)
            << "active=" << active;
    }
}

TEST_F(PowerProxyTest, EstimateGrowsWithLoadAndIntensity)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    chip_.settle(Seconds{0.1});
    const Watts idle = proxy_.estimate(chip_);
    chip_.setLoad(0, CoreLoad::running(0.6, 10.0_mV, 18.0_mV));
    chip_.settle(Seconds{0.1});
    const Watts light = proxy_.estimate(chip_);
    chip_.setLoad(0, CoreLoad::running(1.2, 14.0_mV, 26.0_mV));
    chip_.settle(Seconds{0.1});
    const Watts heavy = proxy_.estimate(chip_);
    EXPECT_GT(light, idle);
    EXPECT_GT(heavy, light);
}

TEST_F(PowerProxyTest, GatedCoresInvisible)
{
    chip_.setMode(GuardbandMode::StaticGuardband);
    chip_.settle(Seconds{0.1});
    const Watts allOn = proxy_.estimate(chip_);
    for (size_t i = 0; i < 8; ++i)
        chip_.setLoad(i, CoreLoad::powerGated());
    chip_.settle(Seconds{0.1});
    const Watts allGated = proxy_.estimate(chip_);
    EXPECT_LT(allGated, allOn - 8.0 * proxy_.params().basePerCore + Watts{1.0});
}

TEST_F(PowerProxyTest, CalibrationErrorFrozenBySeed)
{
    PowerProxy a(PowerProxyParams(), 1);
    PowerProxy b(PowerProxyParams(), 1);
    PowerProxy c(PowerProxyParams(), 2);
    EXPECT_DOUBLE_EQ(a.calibrationScale(), b.calibrationScale());
    EXPECT_NE(a.calibrationScale(), c.calibrationScale());
    EXPECT_NEAR(a.calibrationScale(), 1.0, 0.15);
}

TEST_F(PowerProxyTest, ProxyDrivenCappingHoldsNearCap)
{
    // Drive the governor with the *estimate* instead of the sensor:
    // the cap holds within the proxy's calibration error.
    chip_.setMode(GuardbandMode::AdaptiveUndervolt);
    for (size_t i = 0; i < 8; ++i)
        chip_.setLoad(i, CoreLoad::running(1.1, 13.0_mV, 24.0_mV));
    PowerCapController governor;
    const Watts cap = Watts{100.0};
    for (int interval = 0; interval < 40; ++interval) {
        chip_.settle(Seconds{0.6});
        const Hertz next = governor.decide(chip_.targetFrequency(),
                                           proxy_.estimate(chip_), cap);
        if (next != chip_.targetFrequency())
            chip_.setTargetFrequency(next);
    }
    chip_.settle(Seconds{1.0});
    const double errorBudget = std::abs(proxy_.calibrationScale() - 1.0) +
                               0.18;
    EXPECT_LE(chip_.power(), cap * (1.0 + errorBudget));
    EXPECT_GE(chip_.power(), cap * (1.0 - errorBudget) - Watts{10.0});
}

TEST(PowerProxyValidation, RejectsBadParams)
{
    PowerProxyParams params;
    params.refFrequency = Hertz{0.0};
    EXPECT_THROW(PowerProxy(params, 1), ConfigError);
    params = PowerProxyParams();
    params.calibrationSpread = -1.0;
    EXPECT_THROW(PowerProxy(params, 1), ConfigError);
}

} // namespace
} // namespace agsim::chip
