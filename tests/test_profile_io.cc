/**
 * @file
 * Profile text-format tests: round trips, defaults, error reporting,
 * and the M/D/1 sanity check of the QoS queue (theory validation).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "qos/websearch.h"
#include "workload/library.h"
#include "workload/profile_io.h"

namespace agsim::workload {
namespace {

TEST(ProfileIo, RoundTripsEveryLibraryProfile)
{
    for (const auto &original : library()) {
        const auto parsed = parseProfiles(profileToText(original));
        ASSERT_EQ(parsed.size(), 1u) << original.name;
        const auto &p = parsed[0];
        EXPECT_EQ(p.name, original.name);
        EXPECT_EQ(p.suite, original.suite);
        EXPECT_NEAR(p.intensity, original.intensity, 1e-6);
        EXPECT_NEAR(p.mipsPerThread, original.mipsPerThread,
                    original.mipsPerThread * 1e-5);
        EXPECT_NEAR(p.memoryBoundedness, original.memoryBoundedness,
                    1e-6);
        EXPECT_NEAR(p.serialFraction, original.serialFraction, 1e-6);
        EXPECT_NEAR(p.contentionSensitivity,
                    original.contentionSensitivity, 1e-6);
        EXPECT_NEAR(p.crossChipPenalty, original.crossChipPenalty, 1e-6);
        EXPECT_NEAR(p.didtTypicalAmp, original.didtTypicalAmp, 1e-9);
        EXPECT_NEAR(p.didtWorstAmp, original.didtWorstAmp, 1e-9);
    }
}

TEST(ProfileIo, RoundTripsPhases)
{
    const auto phased = makePhased(byName("raytrace"), Seconds{1.0}, 0.3, 1.2,
                                   0.6);
    const auto parsed = parseProfiles(profileToText(phased));
    ASSERT_EQ(parsed.size(), 1u);
    ASSERT_EQ(parsed[0].phases.size(), 2u);
    EXPECT_NEAR(parsed[0].phases[0].duration, Seconds{0.3}, Seconds{1e-9});
    EXPECT_NEAR(parsed[0].phases[0].intensityScale, 1.2, 1e-9);
    EXPECT_NEAR(parsed[0].phases[1].rateScale, 0.6, 1e-9);
}

TEST(ProfileIo, DefaultsApplyForOmittedKeys)
{
    const auto parsed = parseProfiles("[minimal]\nintensity 0.9\n");
    ASSERT_EQ(parsed.size(), 1u);
    const BenchmarkProfile defaults;
    EXPECT_DOUBLE_EQ(parsed[0].intensity, 0.9);
    EXPECT_DOUBLE_EQ(parsed[0].mipsPerThread, defaults.mipsPerThread);
    EXPECT_EQ(parsed[0].suite, Suite::Synthetic);
}

TEST(ProfileIo, MultipleBlocksAndComments)
{
    const std::string text =
        "# two workloads\n"
        "[alpha]\n"
        "intensity 0.8   # light\n"
        "\n"
        "[beta]\n"
        "intensity 1.1\n"
        "mips_per_thread 9000\n";
    const auto parsed = parseProfiles(text);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].name, "alpha");
    EXPECT_EQ(parsed[1].name, "beta");
    EXPECT_DOUBLE_EQ(parsed[1].mipsPerThread, InstrPerSec{9000e6});
}

TEST(ProfileIo, ErrorsAreLoud)
{
    EXPECT_THROW(parseProfiles("intensity 0.9\n"), ConfigError);
    EXPECT_THROW(parseProfiles("[x]\nbogus_key 1\n"), ConfigError);
    EXPECT_THROW(parseProfiles("[x]\nintensity oops\n"), ConfigError);
    EXPECT_THROW(parseProfiles("[x]\nintensity\n"), ConfigError);
    EXPECT_THROW(parseProfiles("[x]\nintensity 99\n"), ConfigError);
    EXPECT_THROW(parseProfiles("[x]\n[x]\nintensity 0.9\n"),
                 ConfigError); // first x is invalid only if... name dup
    EXPECT_THROW(parseProfiles("[a]\nintensity 0.9\n[a]\n"
                               "intensity 0.8\n"),
                 ConfigError);
    EXPECT_THROW(parseProfiles("[unterminated\nintensity 0.9\n"),
                 ConfigError);
    EXPECT_THROW(loadProfiles("/nonexistent/path.profiles"),
                 ConfigError);
}

TEST(ProfileIo, SuiteTokensRoundTrip)
{
    for (Suite suite : {Suite::Parsec, Suite::Splash2,
                        Suite::SpecCpu2006, Suite::Coremark,
                        Suite::Datacenter, Suite::Synthetic}) {
        BenchmarkProfile p = byName("raytrace");
        p.name = std::string{"t"};
        p.suite = suite;
        const auto parsed = parseProfiles(profileToText(p));
        ASSERT_EQ(parsed.size(), 1u);
        EXPECT_EQ(parsed[0].suite, suite);
    }
}

TEST(QosQueueTheory, MatchesMd1InTheDeterministicLimit)
{
    // With a nearly deterministic service (tiny sigma) the QoS queue is
    // M/D/1: mean sojourn = S * (1 + rho / (2 (1 - rho))).
    qos::WebSearchParams params;
    params.arrivalRatePerSec = 2.0;
    params.serviceMeanAtNominal = Seconds{0.2};
    params.serviceSigma = 0.01;
    params.memoryBoundedness = 0.0;
    params.frequencyExponent = 1.0;
    params.windowLength = Seconds{500.0};
    qos::WebSearchService service(params);

    const auto windows = service.simulate(params.nominalFrequency,
                                          Seconds{200000.0});
    Seconds meanLatency = Seconds{0.0};
    size_t queries = 0;
    for (const auto &w : windows) {
        meanLatency += w.meanLatency * double(w.queries);
        queries += w.queries;
    }
    meanLatency /= double(queries);

    const double rho = params.arrivalRatePerSec *
                       params.serviceMeanAtNominal.value();
    const Seconds md1 = params.serviceMeanAtNominal *
                        (1.0 + rho / (2.0 * (1.0 - rho)));
    EXPECT_NEAR(meanLatency, md1, md1 * 0.05);
}

} // namespace
} // namespace agsim::workload
