/**
 * @file
 * QuantileSketch tests: the relative-error bound, the negative/zero
 * paths, merge algebra across shards, and copy semantics (the hot-
 * bucket cache must never follow a copy into the source's buckets).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "stats/quantile_sketch.h"

namespace agsim::stats {
namespace {

/** Exact type-7-free reference: value at rank floor(q * (n-1)). */
double
exactQuantile(std::vector<double> xs, double q)
{
    std::sort(xs.begin(), xs.end());
    const size_t rank = size_t(q * double(xs.size() - 1));
    return xs[rank];
}

TEST(QuantileSketch, EmptyAndSingle)
{
    QuantileSketch sketch;
    EXPECT_EQ(sketch.count(), 0u);
    EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
    sketch.add(42.0);
    EXPECT_EQ(sketch.count(), 1u);
    EXPECT_NEAR(sketch.quantile(0.0), 42.0, 42.0 * 0.01);
    EXPECT_NEAR(sketch.quantile(1.0), 42.0, 42.0 * 0.01);
    EXPECT_DOUBLE_EQ(sketch.min(), 42.0);
    EXPECT_DOUBLE_EQ(sketch.max(), 42.0);
    EXPECT_DOUBLE_EQ(sketch.mean(), 42.0);
}

TEST(QuantileSketch, RelativeErrorBoundHolds)
{
    const double alpha = 0.01;
    QuantileSketch sketch(alpha);
    Rng rng(0xABCDEFull);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i) {
        // Latency-like long-tailed positives across three decades.
        const double x = std::exp(rng.uniform(0.0, 7.0)) * 1e-3;
        xs.push_back(x);
        sketch.add(x);
    }
    for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
        const double exact = exactQuantile(xs, q);
        const double est = sketch.quantile(q);
        EXPECT_NEAR(est, exact, exact * 2.0 * alpha)
            << "quantile " << q;
    }
}

TEST(QuantileSketch, NegativeAndZeroValues)
{
    QuantileSketch sketch;
    // Voltage margins go negative under droop; the mirrored map must
    // keep ordering across the sign boundary.
    for (int i = 0; i < 100; ++i)
        sketch.add(-1.0);
    for (int i = 0; i < 100; ++i)
        sketch.add(0.0);
    for (int i = 0; i < 100; ++i)
        sketch.add(1.0);
    EXPECT_NEAR(sketch.quantile(0.1), -1.0, 0.03);
    EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
    EXPECT_NEAR(sketch.quantile(0.9), 1.0, 0.03);
    EXPECT_DOUBLE_EQ(sketch.min(), -1.0);
    EXPECT_DOUBLE_EQ(sketch.max(), 1.0);
}

TEST(QuantileSketch, MergeMatchesCombinedStream)
{
    QuantileSketch combined;
    QuantileSketch shardA;
    QuantileSketch shardB;
    Rng rng(0x5EEDull);
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.uniform(-2.0, 10.0);
        combined.add(x);
        (i % 2 == 0 ? shardA : shardB).add(x);
    }
    shardA.merge(shardB);
    EXPECT_EQ(shardA.count(), combined.count());
    EXPECT_DOUBLE_EQ(shardA.sum(), combined.sum());
    EXPECT_DOUBLE_EQ(shardA.min(), combined.min());
    EXPECT_DOUBLE_EQ(shardA.max(), combined.max());
    for (double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.99})
        EXPECT_DOUBLE_EQ(shardA.quantile(q), combined.quantile(q))
            << "quantile " << q;
}

TEST(QuantileSketch, MergeEmptyIsIdentity)
{
    QuantileSketch sketch;
    QuantileSketch empty;
    sketch.add(3.0);
    sketch.merge(empty);
    EXPECT_EQ(sketch.count(), 1u);
    empty.merge(sketch);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.min(), 3.0);
}

TEST(QuantileSketch, CopyIsIndependentOfSource)
{
    QuantileSketch source;
    // Prime the hot-bucket cache so a buggy copy would alias it.
    for (int i = 0; i < 10; ++i)
        source.add(5.0);
    QuantileSketch copy(source);
    // Writes through the copy must not touch the source (and vice
    // versa) even though both cached the same bucket value.
    for (int i = 0; i < 10; ++i)
        copy.add(5.0);
    EXPECT_EQ(source.count(), 10u);
    EXPECT_EQ(copy.count(), 20u);

    QuantileSketch assigned;
    assigned = source;
    for (int i = 0; i < 5; ++i)
        assigned.add(5.0);
    EXPECT_EQ(source.count(), 10u);
    EXPECT_EQ(assigned.count(), 15u);
    EXPECT_NEAR(assigned.quantile(0.5), 5.0, 5.0 * 0.03);
}

TEST(QuantileSketch, ClearDropsObservationsKeepsAccuracy)
{
    QuantileSketch sketch(0.05);
    sketch.add(1.0);
    sketch.add(100.0);
    sketch.clear();
    EXPECT_EQ(sketch.count(), 0u);
    EXPECT_EQ(sketch.bucketCount(), 0u);
    EXPECT_DOUBLE_EQ(sketch.relativeAccuracy(), 0.05);
    sketch.add(2.0);
    EXPECT_NEAR(sketch.quantile(0.5), 2.0, 2.0 * 0.1);
}

} // namespace
} // namespace agsim::stats
