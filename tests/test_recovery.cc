/**
 * @file
 * RecoveryManager tests: watchdog detection, probe backoff and
 * abandonment, hang self-recovery, checkpoint restore, drain-and-
 * migrate, the degradation ladder, and the determinism guarantee —
 * with no failures scheduled, an enabled manager must be bit-identical
 * to a disabled one.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.h"
#include "fault/fault_plan.h"
#include "obs/observability.h"
#include "recovery/recovery_manager.h"
#include "system/fleet_stepper.h"
#include "system/server.h"

namespace agsim::recovery {
namespace {

using namespace agsim::units;

constexpr Seconds kDt{1e-3};

system::ServerConfig
serverConfig(size_t index)
{
    system::ServerConfig config;
    config.socketCount = 2;
    config.chipTemplate.mode = chip::GuardbandMode::AdaptiveUndervolt;
    config.chipTemplate.seed =
        0x5E6E6Aull + 0x9E3779B97F4A7C15ull * index;
    return config;
}

/** A small fleet wired to a stepper and a manager. */
struct TestFleet
{
    explicit TestFleet(size_t serverCount, const RecoveryPolicy &policy,
                       const std::vector<fault::FaultPlan> &plans = {})
        : stepper(system::FleetStepperConfig{}), manager(&stepper, policy)
    {
        for (size_t i = 0; i < serverCount; ++i)
            servers.push_back(
                std::make_unique<system::Server>(serverConfig(i)));
        for (size_t i = 0; i < serverCount; ++i) {
            const fault::FaultPlan *plan =
                i < plans.size() && !plans[i].empty() ? &plans[i]
                                                      : nullptr;
            manager.addServer(*servers[i], plan);
        }
    }

    void
    run(Seconds duration)
    {
        const int64_t ticks = int64_t(duration.value() / kDt.value());
        for (int64_t t = 0; t < ticks; ++t) {
            stepper.step(kDt);
            manager.tick(kDt);
        }
    }

    /** Cores currently running a thread on one server (freq > 0). */
    size_t
    activeCores(size_t server) const
    {
        size_t n = 0;
        const system::Server &s = *servers[server];
        for (size_t socket = 0; socket < s.socketCount(); ++socket) {
            const chip::Chip &c = s.chip(socket);
            for (size_t core = 0; core < c.coreCount(); ++core) {
                if (c.coreFrequency(core) > Hertz{0.0} &&
                    !c.load(core).gated && c.load(core).active)
                    ++n;
            }
        }
        return n;
    }

    std::vector<std::unique_ptr<system::Server>> servers;
    system::FleetStepper stepper;
    RecoveryManager manager;
};

chip::CoreLoad
workerLoad()
{
    return chip::CoreLoad::running(0.9, 13.0_mV, 24.0_mV);
}

TEST(RecoveryPolicyValidation, RejectsNonsense)
{
    auto expectBad = [](auto mutate) {
        RecoveryPolicy policy;
        mutate(policy);
        EXPECT_THROW(policy.validate(), ConfigError);
    };
    expectBad([](RecoveryPolicy &p) { p.heartbeatTimeout = Seconds{0.0}; });
    expectBad([](RecoveryPolicy &p) { p.probeInitialDelay = Seconds{-1.0}; });
    expectBad([](RecoveryPolicy &p) { p.probeBackoff = 0.5; });
    expectBad([](RecoveryPolicy &p) { p.probeBudget = 0; });
    expectBad([](RecoveryPolicy &p) { p.checkpointInterval = Seconds{0.0}; });
    expectBad([](RecoveryPolicy &p) { p.restartLatency = Seconds{-0.1}; });
    expectBad([](RecoveryPolicy &p) { p.stormFailureThreshold = 0; });
    expectBad([](RecoveryPolicy &p) {
        p.cascadeFailureThreshold = p.stormFailureThreshold - 1;
    });
    expectBad([](RecoveryPolicy &p) {
        p.shedFailureThreshold = p.cascadeFailureThreshold - 1;
    });
    expectBad([](RecoveryPolicy &p) { p.stormWindow = Seconds{0.0}; });
    expectBad([](RecoveryPolicy &p) { p.shedFraction = 1.0; });
    RecoveryPolicy good;
    EXPECT_NO_THROW(good.validate());
}

TEST(RecoveryManager, CrashIsDetectedRestoredAndResumed)
{
    obs::resetAll();
    std::vector<fault::FaultPlan> plans(2);
    plans[0].serverCrash(Seconds{0.3}, Seconds{0.2});

    TestFleet fleet(2, RecoveryPolicy{}, plans);
    fleet.manager.setWorkload(12, workerLoad());
    fleet.run(Seconds{1.2});

    EXPECT_EQ(fleet.manager.failures(), 1);
    EXPECT_EQ(fleet.manager.recoveries(), 1);
    EXPECT_EQ(fleet.manager.state(0), ServerRecoveryState::Online);
    EXPECT_EQ(fleet.manager.onlineCount(), 2u);
    EXPECT_GT(fleet.manager.checkpoints(), 0);
    // The outage spans at least the fault window (the crash cause must
    // clear before a restart can take) plus detection and reboot time.
    EXPECT_GT(fleet.manager.meanTimeToRecover(), Seconds{0.2});
    EXPECT_LT(fleet.manager.meanTimeToRecover(), Seconds{0.6});
    // The restore path (not a cold start) brought the server back: the
    // default checkpoint cadence has a capture before the crash.
    EXPECT_EQ(
        obs::registry().counter("recovery.restores_total").value(), 1);
    // Lost work is real: the restored server resumed from a checkpoint
    // behind the fleet's clock.
    EXPECT_LT(fleet.servers[0]->chip(0).simTime(),
              fleet.servers[1]->chip(0).simTime());
}

TEST(RecoveryManager, HangSelfRecoversEvenWhenDisabled)
{
    RecoveryPolicy blind;
    blind.enabled = false;
    std::vector<fault::FaultPlan> plans(2);
    plans[0].serverHang(Seconds{0.2}, Seconds{0.1});

    TestFleet fleet(2, blind, plans);
    fleet.manager.setWorkload(8, workerLoad());

    fleet.run(Seconds{0.25});
    EXPECT_EQ(fleet.manager.onlineCount(), 1u); // frozen mid-hang

    fleet.run(Seconds{0.25});
    EXPECT_EQ(fleet.manager.onlineCount(), 2u);
    EXPECT_EQ(fleet.manager.selfRecoveries(), 1);
    EXPECT_EQ(fleet.manager.failures(), 0); // nobody was watching
}

TEST(RecoveryManager, BlindCrashStaysDownForever)
{
    RecoveryPolicy blind;
    blind.enabled = false;
    std::vector<fault::FaultPlan> plans(2);
    plans[0].serverCrash(Seconds{0.2}, Seconds{0.1});

    TestFleet fleet(2, blind, plans);
    fleet.manager.setWorkload(8, workerLoad());
    fleet.run(Seconds{1.0});

    EXPECT_EQ(fleet.manager.onlineCount(), 1u);
    EXPECT_EQ(fleet.manager.recoveries(), 0);
    const Seconds frozenAt = fleet.servers[0]->chip(0).simTime();
    fleet.run(Seconds{0.2});
    EXPECT_EQ(fleet.servers[0]->chip(0).simTime(), frozenAt);
}

TEST(RecoveryManager, ProbeBudgetExhaustionAbandonsTheServer)
{
    obs::resetAll();
    RecoveryPolicy policy;
    policy.probeBudget = 3;
    std::vector<fault::FaultPlan> plans(2);
    // Crash until end of run: every probe fails.
    plans[0].serverCrash(Seconds{0.1}, Seconds{0.0});

    TestFleet fleet(2, policy, plans);
    fleet.manager.setWorkload(8, workerLoad());
    fleet.run(Seconds{1.0});

    EXPECT_EQ(fleet.manager.state(0), ServerRecoveryState::Abandoned);
    EXPECT_EQ(fleet.manager.recoveries(), 0);
    EXPECT_EQ(
        obs::registry().counter("recovery.probe_failures_total").value(),
        3);
    // Backoff doubles the gap: 3 failed probes need detection + 0.02 +
    // 0.04 s before the third fires — well inside the run, but not
    // instantly.
    EXPECT_EQ(obs::registry().counter("recovery.probes_total").value(), 3);
}

TEST(RecoveryManager, HangPowerCycleLosesStateButRecoversFaster)
{
    // A long hang: waiting it out would take 0.5 s, but a probe
    // power-cycles the server at detection + probe delay.
    RecoveryPolicy policy;
    std::vector<fault::FaultPlan> plans(1);
    plans[0].serverHang(Seconds{0.2}, Seconds{0.5});

    TestFleet fleet(1, policy, plans);
    fleet.manager.setWorkload(4, workerLoad());
    fleet.run(Seconds{1.0});

    EXPECT_EQ(fleet.manager.failures(), 1);
    EXPECT_EQ(fleet.manager.recoveries(), 1);
    EXPECT_EQ(fleet.manager.selfRecoveries(), 0);
    // Power-cycle beat the hang window by a wide margin.
    EXPECT_LT(fleet.manager.meanTimeToRecover(), Seconds{0.2});
    EXPECT_EQ(fleet.manager.state(0), ServerRecoveryState::Online);
}

TEST(RecoveryManager, DrainMigratesWorkAndRecoveryRebalances)
{
    obs::resetAll();
    std::vector<fault::FaultPlan> plans(2);
    plans[0].serverCrash(Seconds{0.3}, Seconds{0.2});

    TestFleet fleet(2, RecoveryPolicy{}, plans);
    // 10 threads fit entirely on one 16-core server when needed.
    fleet.manager.setWorkload(10, workerLoad());

    fleet.run(Seconds{0.2});
    EXPECT_EQ(fleet.activeCores(0), 5u);
    EXPECT_EQ(fleet.activeCores(1), 5u);

    // Mid-outage (after detection): all 10 threads on the survivor.
    fleet.run(Seconds{0.2});
    EXPECT_EQ(fleet.manager.state(0), ServerRecoveryState::Failed);
    EXPECT_EQ(fleet.activeCores(1), 10u);
    EXPECT_EQ(fleet.manager.placedThreads(), 10u);

    // After recovery: rebalanced.
    fleet.run(Seconds{0.8});
    EXPECT_EQ(fleet.manager.state(0), ServerRecoveryState::Online);
    EXPECT_EQ(fleet.activeCores(0), 5u);
    EXPECT_EQ(fleet.activeCores(1), 5u);
    EXPECT_GT(
        obs::registry().counter("recovery.migrations_total").value(), 0);
}

TEST(RecoveryManager, CorrelatedStormClimbsLadderThenDeescalates)
{
    obs::resetAll();
    std::vector<fault::FaultPlan> plans(4);
    // Three near-simultaneous crashes: over the cascade threshold (3),
    // under the shed threshold (5).
    plans[0].serverCrash(Seconds{0.3}, Seconds{0.1});
    plans[1].serverCrash(Seconds{0.31}, Seconds{0.1});
    plans[2].serverCrash(Seconds{0.32}, Seconds{0.1});

    TestFleet fleet(4, RecoveryPolicy{}, plans);
    fleet.manager.setWorkload(16, workerLoad());

    fleet.run(Seconds{0.5});
    EXPECT_EQ(fleet.manager.degradationRung(), 2);
    // Rung 2: every servable socket forced to StaticGuardband.
    for (size_t socket = 0; socket < 2; ++socket) {
        EXPECT_EQ(fleet.servers[3]->chip(socket).commandedMode(),
                  chip::GuardbandMode::StaticGuardband);
    }

    // Storm clears; de-escalation walks one rung per clean window back
    // to healthy, and baseline modes return.
    fleet.run(Seconds{2.0});
    EXPECT_EQ(fleet.manager.degradationRung(), 0);
    EXPECT_EQ(fleet.manager.onlineCount(), 4u);
    for (size_t socket = 0; socket < 2; ++socket) {
        EXPECT_EQ(fleet.servers[3]->chip(socket).commandedMode(),
                  chip::GuardbandMode::AdaptiveUndervolt);
    }
    EXPECT_GE(
        obs::registry().counter("recovery.ladder_transitions_total")
            .value(),
        3);
}

TEST(RecoveryManager, EnabledIsBitIdenticalToDisabledWithoutFailures)
{
    RecoveryPolicy on;
    RecoveryPolicy off;
    off.enabled = false;

    TestFleet fleetOn(2, on);
    TestFleet fleetOff(2, off);
    fleetOn.manager.setWorkload(10, workerLoad());
    fleetOff.manager.setWorkload(10, workerLoad());

    fleetOn.run(Seconds{0.5});
    fleetOff.run(Seconds{0.5});

    // Watchdog, checkpointing, and the (quiescent) ladder must be pure
    // observers: identical telemetry, bit for bit.
    for (size_t i = 0; i < 2; ++i) {
        for (size_t socket = 0; socket < 2; ++socket) {
            const chip::Chip &a = fleetOn.servers[i]->chip(socket);
            const chip::Chip &b = fleetOff.servers[i]->chip(socket);
            EXPECT_EQ(a.power().value(), b.power().value());
            EXPECT_EQ(a.setpoint().value(), b.setpoint().value());
            EXPECT_EQ(a.simTime().value(), b.simTime().value());
            EXPECT_EQ(a.lastWorstMargin().value(),
                      b.lastWorstMargin().value());
            ASSERT_EQ(a.telemetry().windows().size(),
                      b.telemetry().windows().size());
            for (size_t w = 0; w < a.telemetry().windows().size(); ++w) {
                EXPECT_EQ(a.telemetry().windows()[w].worstMargin.value(),
                          b.telemetry().windows()[w].worstMargin.value());
                EXPECT_EQ(
                    a.telemetry().windows()[w].meanChipPower.value(),
                    b.telemetry().windows()[w].meanChipPower.value());
            }
        }
    }
    EXPECT_GT(fleetOn.manager.checkpoints(), 0);
    EXPECT_EQ(fleetOff.manager.checkpoints(), 0);
}

} // namespace
} // namespace agsim::recovery
