/**
 * @file
 * Guardband-report and telemetry-CSV tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "chip/chip.h"
#include "common/error.h"
#include "common/units.h"
#include "core/ags.h"
#include "core/guardband_report.h"
#include "pdn/vrm.h"
#include "sensors/telemetry_csv.h"
#include "workload/library.h"

namespace agsim {
namespace {

using namespace agsim::units;

TEST(GuardbandReport, ComponentsSumToGuardband)
{
    core::ScheduledRunSpec spec;
    spec.profile = workload::byName("raytrace");
    spec.threads = 4;
    spec.mode = chip::GuardbandMode::AdaptiveUndervolt;
    spec.simConfig.measureDuration = Seconds{0.5};
    const auto result = core::runScheduled(spec);

    const auto report = core::makeGuardbandReport(result.metrics);
    EXPECT_GT(report.reclaimed, Volts{0.0});
    EXPECT_GT(report.passive, Volts{0.0});
    EXPECT_GT(report.noise, Volts{0.0});
    EXPECT_GE(report.reserve, Volts{0.0});
    EXPECT_GT(report.reclaimedFraction(), 0.15);
    EXPECT_LT(report.reclaimedFraction(), 0.60);
    // The four shares cover the guardband (reserve absorbs the rest).
    EXPECT_NEAR(report.reclaimed + report.passive + report.noise +
                    report.reserve,
                report.staticGuardband,
                0.035); // undervolting shrinks passive below the static
                        // worst case, so the sum can exceed slightly
}

TEST(GuardbandReport, MoreCoresLessReclaimed)
{
    auto reclaimedAt = [](size_t threads) {
        core::ScheduledRunSpec spec;
        spec.profile = workload::byName("raytrace");
        spec.threads = threads;
        spec.mode = chip::GuardbandMode::AdaptiveUndervolt;
        spec.simConfig.measureDuration = Seconds{0.5};
        return core::makeGuardbandReport(
                   core::runScheduled(spec).metrics)
            .reclaimedFraction();
    };
    EXPECT_GT(reclaimedAt(1), reclaimedAt(8) + 0.1);
}

TEST(GuardbandReport, RenderingMentionsEveryShare)
{
    core::ScheduledRunSpec spec;
    spec.profile = workload::byName("radix");
    spec.threads = 2;
    spec.mode = chip::GuardbandMode::AdaptiveUndervolt;
    spec.simConfig.measureDuration = Seconds{0.4};
    const auto report = core::makeGuardbandReport(
        core::runScheduled(spec).metrics);
    const std::string text = report.toString();
    EXPECT_NE(text.find("reclaimed"), std::string::npos);
    EXPECT_NE(text.find("passive"), std::string::npos);
    EXPECT_NE(text.find("di/dt"), std::string::npos);
    EXPECT_NE(text.find("reserve"), std::string::npos);
}

TEST(GuardbandReport, Validation)
{
    system::RunMetrics empty;
    EXPECT_THROW(core::makeGuardbandReport(empty), ConfigError);
}

TEST(TelemetryCsv, EmptyTelemetryWritesNothing)
{
    sensors::Telemetry telemetry(8);
    std::ostringstream out;
    EXPECT_EQ(sensors::writeTelemetryCsv(telemetry, out), 0u);
    EXPECT_TRUE(out.str().empty());
}

TEST(TelemetryCsv, RowsMatchWindowsAndHeader)
{
    pdn::Vrm vrm(1);
    chip::Chip chip(chip::ChipConfig(), &vrm);
    chip.setMode(chip::GuardbandMode::StaticGuardband);
    for (size_t i = 0; i < 2; ++i)
        chip.setLoad(i, chip::CoreLoad::running(1.0, 13.0_mV, 24.0_mV));
    chip.settle(Seconds{0.2});

    const std::string csv =
        sensors::telemetryCsvString(chip.telemetry());
    // Header + one line per window.
    const size_t lines = std::count(csv.begin(), csv.end(), '\n');
    EXPECT_EQ(lines, chip.telemetry().windows().size() + 1);
    EXPECT_NE(csv.find("time_s,power_w"), std::string::npos);
    EXPECT_NE(csv.find("sample_cpm_7"), std::string::npos);
    EXPECT_NE(csv.find("didt_worst_mv"), std::string::npos);

    // Every row has the same number of commas as the header.
    std::istringstream stream(csv);
    std::string header;
    std::getline(stream, header);
    const size_t headerCommas =
        std::count(header.begin(), header.end(), ',');
    std::string row;
    while (std::getline(stream, row)) {
        EXPECT_EQ(std::count(row.begin(), row.end(), ','),
                  ptrdiff_t(headerCommas));
    }
}

} // namespace
} // namespace agsim
