/**
 * @file
 * Deterministic RNG tests: reproducibility, stream independence, and
 * first/second-moment checks on every distribution helper.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace agsim {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42, 0);
    Rng b(42, 0);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(42, 0);
    Rng b(43, 0);
    int differences = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() != b.next())
            ++differences;
    }
    EXPECT_GT(differences, 95);
}

TEST(Rng, DifferentStreamsDiffer)
{
    Rng a(42, 0);
    Rng b(42, 1);
    int differences = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() != b.next())
            ++differences;
    }
    EXPECT_GT(differences, 95);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7, 3);
    std::vector<uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.reseed(7, 3);
    for (int i = 0; i < 16; ++i)
        ASSERT_EQ(a.next(), first[size_t(i)]);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(2);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearOneHalf)
{
    Rng rng(3);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(4);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 10000; ++i) {
        const int v = rng.uniformInt(2, 9);
        ASSERT_GE(v, 2);
        ASSERT_LE(v, 9);
        sawLo = sawLo || v == 2;
        sawHi = sawHi || v == 9;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    double sum = 0.0, sumSq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sumSq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments)
{
    Rng rng(6);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsBadRate)
{
    Rng rng(8);
    EXPECT_THROW(rng.exponential(0.0), InternalError);
    EXPECT_THROW(rng.exponential(-1.0), InternalError);
}

class RngPoissonTest : public ::testing::TestWithParam<double>
{
};

TEST_P(RngPoissonTest, MeanMatches)
{
    const double mean = GetParam();
    Rng rng(uint64_t(mean * 1000) + 11);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.poisson(mean);
    EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(MeansSmallAndLarge, RngPoissonTest,
                         ::testing::Values(0.1, 0.5, 1.0, 4.0, 16.0, 100.0));

TEST(Rng, PoissonZeroMeanIsZero)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(10);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

} // namespace
} // namespace agsim
