/**
 * @file
 * Parallel experiment runner tests: serial/parallel bit-identity,
 * submission-order results, pool reuse, and error propagation.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "core/ags.h"
#include "system/run_batch.h"
#include "workload/library.h"

namespace agsim::system {
namespace {

/** A short scheduled run; heterogeneous knobs keep tasks distinct. */
core::ScheduledRunSpec
makeSpec(const std::string &workload, size_t threads,
         chip::GuardbandMode mode, Seconds measure)
{
    core::ScheduledRunSpec spec;
    spec.profile = agsim::workload::byName(workload);
    spec.threads = threads;
    spec.runMode = agsim::workload::RunMode::Rate;
    spec.mode = mode;
    spec.simConfig.warmup = Seconds{0.2};
    spec.simConfig.measureDuration = measure;
    return spec;
}

/** Bit-identity over every RunMetrics field (EXPECT_EQ on doubles). */
void
expectMetricsIdentical(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.executionTime, b.executionTime);
    EXPECT_EQ(a.socketPower, b.socketPower);
    EXPECT_EQ(a.totalChipPower, b.totalChipPower);
    EXPECT_EQ(a.chipEnergy, b.chipEnergy);
    EXPECT_EQ(a.edp, b.edp);
    EXPECT_EQ(a.meanFrequency, b.meanFrequency);
    EXPECT_EQ(a.minFrequency, b.minFrequency);
    EXPECT_EQ(a.socketUndervolt, b.socketUndervolt);
    EXPECT_EQ(a.socketSetpoint, b.socketSetpoint);
    EXPECT_EQ(a.meanChipMips, b.meanChipMips);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].instructions, b.jobs[i].instructions);
        EXPECT_EQ(a.jobs[i].meanRate, b.jobs[i].meanRate);
        EXPECT_EQ(a.jobs[i].completed, b.jobs[i].completed);
        EXPECT_EQ(a.jobs[i].completionTime, b.jobs[i].completionTime);
    }
}

TEST(RunBatch, ParallelIsBitIdenticalToSerial)
{
    // Heterogeneous sweep shaped like a figure bench: different
    // workloads, thread counts, and guardband modes.
    std::vector<core::ScheduledRunSpec> specs;
    specs.push_back(makeSpec("raytrace", 1,
                             chip::GuardbandMode::StaticGuardband, Seconds{0.1}));
    specs.push_back(makeSpec("raytrace", 8,
                             chip::GuardbandMode::AdaptiveUndervolt, Seconds{0.1}));
    specs.push_back(makeSpec("swaptions", 4,
                             chip::GuardbandMode::AdaptiveOverclock, Seconds{0.1}));
    specs.push_back(makeSpec("radix", 2,
                             chip::GuardbandMode::AdaptiveUndervolt, Seconds{0.2}));
    auto borrow = makeSpec("lu_cb", 4,
                           chip::GuardbandMode::AdaptiveUndervolt, Seconds{0.1});
    borrow.policy = core::PlacementPolicy::LoadlineBorrow;
    borrow.poweredCoreBudget = 8;
    specs.push_back(std::move(borrow));

    const auto serial = core::runScheduledBatch(specs, 1);
    const auto parallel = core::runScheduledBatch(specs, 4);

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        expectMetricsIdentical(serial[i].metrics, parallel[i].metrics);
        EXPECT_EQ(serial[i].plan.gatedCores, parallel[i].plan.gatedCores);
    }
}

TEST(RunBatch, BatchOfOneMatchesRunScheduled)
{
    const auto spec = makeSpec(
        "raytrace", 4, chip::GuardbandMode::AdaptiveUndervolt, Seconds{0.1});
    const auto direct = core::runScheduled(spec);
    const auto batched = core::runScheduledBatch({spec}, 4);
    ASSERT_EQ(batched.size(), 1u);
    expectMetricsIdentical(direct.metrics, batched[0].metrics);
}

TEST(RunBatch, ResultsComeBackInSubmissionOrder)
{
    // First-submitted task runs longest: with 4 workers it finishes
    // *last*, so order must come from submission, not completion.
    const Seconds durations[] = {Seconds{0.4}, Seconds{0.2}, Seconds{0.1}, Seconds{0.05}};
    std::vector<BatchTask> tasks;
    for (size_t i = 0; i < 4; ++i) {
        auto spec = makeSpec("raytrace", 1,
                             chip::GuardbandMode::StaticGuardband,
                             durations[i]);
        auto task = core::makeBatchTask(spec);
        task.label = "task" + std::to_string(i);
        tasks.push_back(std::move(task));
    }

    const auto results = BatchRunner::runAll(std::move(tasks), 4);
    ASSERT_EQ(results.size(), 4u);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(results[i].label, "task" + std::to_string(i));
}

TEST(RunBatch, RunnerIsReusableAcrossRounds)
{
    const auto spec = makeSpec(
        "raytrace", 1, chip::GuardbandMode::StaticGuardband, Seconds{0.05});

    BatchRunner runner(2);
    EXPECT_EQ(runner.workerCount(), 2u);
    EXPECT_EQ(runner.submit(core::makeBatchTask(spec)), 0u);
    EXPECT_EQ(runner.submit(core::makeBatchTask(spec)), 1u);
    const auto first = runner.wait();
    ASSERT_EQ(first.size(), 2u);
    expectMetricsIdentical(first[0].metrics, first[1].metrics);

    // wait() reset the round: indices restart and results are fresh.
    EXPECT_EQ(runner.submit(core::makeBatchTask(spec)), 0u);
    const auto second = runner.wait();
    ASSERT_EQ(second.size(), 1u);
    expectMetricsIdentical(first[0].metrics, second[0].metrics);
}

TEST(RunBatch, WorkerExceptionsPropagateToWait)
{
    auto good = core::makeBatchTask(makeSpec(
        "raytrace", 1, chip::GuardbandMode::StaticGuardband, Seconds{0.05}));
    BatchTask bad; // no jobs: runBatchTask rejects it on the worker

    BatchRunner runner(2);
    runner.submit(std::move(good));
    runner.submit(std::move(bad));
    EXPECT_THROW(runner.wait(), ConfigError);
}

TEST(RunBatch, EmptyBatchIsEmpty)
{
    EXPECT_TRUE(core::runScheduledBatch({}, 4).empty());
    EXPECT_TRUE(BatchRunner::runAll({}, 4).empty());
}

TEST(RunBatch, ContinueOnErrorReturnsPartialResults)
{
    auto spec = makeSpec(
        "raytrace", 1, chip::GuardbandMode::StaticGuardband, Seconds{0.05});

    BatchRunner runner(2, BatchErrorPolicy::ContinueOnError);
    EXPECT_EQ(runner.errorPolicy(), BatchErrorPolicy::ContinueOnError);

    auto good0 = core::makeBatchTask(spec);
    good0.label = "good0";
    BatchTask bad; // no jobs: runBatchTask rejects it on the worker
    bad.label = "badTask";
    auto good2 = core::makeBatchTask(spec);
    good2.label = "good2";

    runner.submit(std::move(good0));
    runner.submit(std::move(bad));
    runner.submit(std::move(good2));

    std::vector<BatchResult> results;
    EXPECT_NO_THROW(results = runner.wait());
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].label, "good0");
    EXPECT_EQ(results[1].label, ""); // failed slot: default-constructed
    EXPECT_EQ(results[2].label, "good2");
    EXPECT_GT(results[0].metrics.totalChipPower, Watts{0.0});
    EXPECT_GT(results[2].metrics.totalChipPower, Watts{0.0});

    ASSERT_EQ(runner.lastErrors().size(), 1u);
    EXPECT_EQ(runner.lastErrors()[0].taskIndex, 1u);
    EXPECT_EQ(runner.lastErrors()[0].label, "badTask");
    EXPECT_NE(runner.lastErrors()[0].message.find("job"),
              std::string::npos);

    // The next round starts with a clean error slate.
    runner.submit(core::makeBatchTask(spec));
    EXPECT_EQ(runner.wait().size(), 1u);
    EXPECT_TRUE(runner.lastErrors().empty());
}

TEST(RunBatch, WaitOutcomeCapturesErrorsUnderBothPolicies)
{
    auto spec = makeSpec(
        "raytrace", 1, chip::GuardbandMode::StaticGuardband, Seconds{0.05});

    for (auto policy : {BatchErrorPolicy::AbortOnFirstError,
                        BatchErrorPolicy::ContinueOnError}) {
        BatchRunner runner(2, policy);
        auto good = core::makeBatchTask(spec);
        good.label = "good";
        runner.submit(std::move(good));
        runner.submit(BatchTask()); // fails: no jobs

        BatchOutcome outcome;
        EXPECT_NO_THROW(outcome = runner.waitOutcome());
        EXPECT_FALSE(outcome.ok());
        ASSERT_EQ(outcome.results.size(), 2u);
        EXPECT_EQ(outcome.results[0].label, "good");
        ASSERT_EQ(outcome.errors.size(), 1u);
        EXPECT_EQ(outcome.errors[0].taskIndex, 1u);
    }
}

TEST(RunBatch, RunAllPartialMatchesSerialAndParallel)
{
    auto spec = makeSpec(
        "raytrace", 1, chip::GuardbandMode::StaticGuardband, Seconds{0.05});

    for (size_t workers : {size_t(1), size_t(4)}) {
        std::vector<BatchTask> tasks;
        tasks.push_back(core::makeBatchTask(spec));
        tasks[0].label = "ok0";
        tasks.push_back(BatchTask()); // fails
        tasks[1].label = "broken";
        tasks.push_back(core::makeBatchTask(spec));
        tasks[2].label = "ok2";

        const BatchOutcome outcome =
            BatchRunner::runAllPartial(std::move(tasks), workers);
        ASSERT_EQ(outcome.results.size(), 3u) << workers << " workers";
        EXPECT_EQ(outcome.results[0].label, "ok0");
        EXPECT_EQ(outcome.results[2].label, "ok2");
        ASSERT_EQ(outcome.errors.size(), 1u);
        EXPECT_EQ(outcome.errors[0].taskIndex, 1u);
        EXPECT_EQ(outcome.errors[0].label, "broken");
        EXPECT_FALSE(outcome.errors[0].message.empty());
    }
}

TEST(RunBatch, FaultPlansDemoteAndSurfaceInFinalHealth)
{
    auto spec = makeSpec("swaptions", 4,
                         chip::GuardbandMode::AdaptiveOverclock,
                         Seconds{0.1});
    spec.simConfig.warmup = Seconds{0.4};
    // Storm + CPM dropout: blind cores get assessed against the
    // storm-scaled envelope, which reliably demotes the socket.
    fault::FaultPlan plan;
    plan.droopStorm(Seconds{0.05}, Seconds{0.0}, 30.0, 1.8)
        .cpmDropout(Seconds{0.05}, Seconds{0.0});
    spec.faultPlans.emplace_back(0, plan);

    const auto result = core::runScheduled(spec);
    ASSERT_EQ(result.finalHealth.size(), 2u);
    // The targeted socket demoted; the other stayed healthy.
    EXPECT_TRUE(result.finalHealth[0].demoted());
    EXPECT_EQ(result.finalHealth[0].commandedMode,
              chip::GuardbandMode::AdaptiveOverclock);
    EXPECT_EQ(result.finalHealth[0].effectiveMode,
              chip::GuardbandMode::StaticGuardband);
    EXPECT_GE(result.finalHealth[0].emergencies, 1);
    EXPECT_TRUE(result.finalHealth[1].healthy());
    EXPECT_EQ(result.finalHealth[1].demotions, 0);
}

TEST(RunBatch, FaultInjectedBatchesStayBitIdentical)
{
    fault::FaultPlan plan;
    plan.droopStorm(Seconds{0.05}, Seconds{0.0}, 10.0, 1.5)
        .cpmDropout(Seconds{0.05}, Seconds{0.0});
    std::vector<core::ScheduledRunSpec> specs;
    for (int i = 0; i < 3; ++i) {
        auto spec = makeSpec("swaptions", 2,
                             chip::GuardbandMode::AdaptiveOverclock,
                             Seconds{0.1});
        spec.faultPlans.emplace_back(0, plan);
        specs.push_back(std::move(spec));
    }

    const auto serial = core::runScheduledBatch(specs, 1);
    const auto parallel = core::runScheduledBatch(specs, 3);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        expectMetricsIdentical(serial[i].metrics, parallel[i].metrics);
        ASSERT_EQ(serial[i].finalHealth.size(),
                  parallel[i].finalHealth.size());
        for (size_t s = 0; s < serial[i].finalHealth.size(); ++s) {
            EXPECT_EQ(serial[i].finalHealth[s].state,
                      parallel[i].finalHealth[s].state);
            EXPECT_EQ(serial[i].finalHealth[s].demotions,
                      parallel[i].finalHealth[s].demotions);
            EXPECT_EQ(serial[i].finalHealth[s].emergencies,
                      parallel[i].finalHealth[s].emergencies);
            EXPECT_EQ(serial[i].finalHealth[s].latchedDroopDepth,
                      parallel[i].finalHealth[s].latchedDroopDepth);
        }
    }
}

TEST(RunBatch, FaultPlanSocketOutOfRangeIsRejected)
{
    auto spec = makeSpec("swaptions", 1,
                         chip::GuardbandMode::StaticGuardband,
                         Seconds{0.05});
    spec.faultPlans.emplace_back(7, fault::FaultPlan().vrmDacStuck(
                                        Seconds{0.0}));
    EXPECT_THROW(core::runScheduled(spec), ConfigError);
}

TEST(RunBatch, ServerScopePlanSurfacesAsPerTaskError)
{
    // Server-level faults (crash/hang/VRM shutdown) belong to the
    // recovery subsystem, not to a chip-scope batch plan: the injector
    // rejects them at attach time, and under ContinueOnError that
    // rejection must cost only the offending task.
    auto good = makeSpec(
        "raytrace", 1, chip::GuardbandMode::StaticGuardband, Seconds{0.05});
    auto bad = makeSpec(
        "raytrace", 1, chip::GuardbandMode::StaticGuardband, Seconds{0.05});
    bad.faultPlans.emplace_back(
        0, fault::FaultPlan().serverCrash(Seconds{0.01}, Seconds{0.02}));

    EXPECT_THROW(core::runScheduled(bad), ConfigError);

    BatchRunner runner(2, BatchErrorPolicy::ContinueOnError);
    auto goodTask = core::makeBatchTask(good);
    goodTask.label = "good";
    auto badTask = core::makeBatchTask(bad);
    badTask.label = "serverScope";
    runner.submit(std::move(goodTask));
    runner.submit(std::move(badTask));

    const BatchOutcome outcome = runner.waitOutcome();
    EXPECT_FALSE(outcome.ok());
    ASSERT_EQ(outcome.results.size(), 2u);
    EXPECT_EQ(outcome.results[0].label, "good");
    EXPECT_GT(outcome.results[0].metrics.totalChipPower, Watts{0.0});
    ASSERT_EQ(outcome.errors.size(), 1u);
    EXPECT_EQ(outcome.errors[0].taskIndex, 1u);
    EXPECT_EQ(outcome.errors[0].label, "serverScope");
    EXPECT_NE(outcome.errors[0].message.find("server-scope"),
              std::string::npos);
}

TEST(RunBatch, AllClearOutcomeIsOk)
{
    auto spec = makeSpec(
        "raytrace", 1, chip::GuardbandMode::StaticGuardband, Seconds{0.05});
    std::vector<BatchTask> tasks;
    tasks.push_back(core::makeBatchTask(spec));
    const BatchOutcome outcome =
        BatchRunner::runAllPartial(std::move(tasks), 1);
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.results.size(), 1u);
}

} // namespace
} // namespace agsim::system
