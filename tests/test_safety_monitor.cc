/**
 * @file
 * SafetyMonitor state-machine unit tests (budget, windowing, re-arm
 * hysteresis, backoff, latching) plus the chip-level acceptance
 * scenario: an optimistic CPM bias in AdaptiveUndervolt causes timing
 * emergencies, the monitor demotes within its budget, and no vmin
 * violations remain after demotion.
 */

#include <gtest/gtest.h>

#include "chip/chip.h"
#include "chip/safety_monitor.h"
#include "common/error.h"
#include "common/units.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "pdn/vrm.h"

namespace agsim::chip {
namespace {

using namespace agsim::units;
using Action = SafetyMonitor::Action;

constexpr Seconds kDt = Seconds{1e-3};

SafetyMonitorParams
fastParams()
{
    SafetyMonitorParams p;
    p.emergencyBudget = 4;
    p.windowLength = Seconds{0.1};
    p.rearmInterval = Seconds{0.05};
    p.rearmBackoff = 2.0;
    p.maxRearms = 2;
    return p;
}

/** Feed `steps` identical observations; returns the last action. */
Action
feed(SafetyMonitor &monitor, int steps, bool emergency,
     bool adaptive = true)
{
    Action last = Action::None;
    for (int i = 0; i < steps; ++i)
        last = monitor.observe(emergency, adaptive, kDt);
    return last;
}

TEST(SafetyMonitorUnit, NoEmergenciesNeverDemotes)
{
    SafetyMonitor monitor(fastParams());
    EXPECT_EQ(feed(monitor, 10000, false), Action::None);
    EXPECT_EQ(monitor.state(), SafetyState::Monitoring);
    EXPECT_EQ(monitor.totalEmergencies(), 0);
    EXPECT_EQ(monitor.demotionCount(), 0);
}

TEST(SafetyMonitorUnit, DemotesWhenBudgetExceededInWindow)
{
    SafetyMonitor monitor(fastParams());
    EXPECT_EQ(monitor.observe(true, true, kDt), Action::None);
    EXPECT_EQ(monitor.observe(true, true, kDt), Action::None);
    EXPECT_EQ(monitor.observe(true, true, kDt), Action::None);
    // Fourth emergency hits the budget inside one 0.1 s window.
    EXPECT_EQ(monitor.observe(true, true, kDt), Action::Demote);
    EXPECT_EQ(monitor.state(), SafetyState::Demoted);
    EXPECT_EQ(monitor.demotionCount(), 1);
    EXPECT_GE(monitor.lastDemotionAt(), Seconds{0.0});
}

TEST(SafetyMonitorUnit, SparseEmergenciesStayUnderBudget)
{
    SafetyMonitor monitor(fastParams());
    // One emergency per 0.1 s window: 3 under the budget of 4, forever.
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(monitor.observe(true, true, kDt), Action::None);
        EXPECT_EQ(feed(monitor, 100, false), Action::None);
    }
    EXPECT_EQ(monitor.state(), SafetyState::Monitoring);
    EXPECT_EQ(monitor.totalEmergencies(), 200);
}

TEST(SafetyMonitorUnit, NonAdaptiveModeCountsButNeverDemotes)
{
    SafetyMonitor monitor(fastParams());
    EXPECT_EQ(feed(monitor, 50, true, /*adaptive=*/false), Action::None);
    EXPECT_EQ(monitor.state(), SafetyState::Monitoring);
    EXPECT_EQ(monitor.totalEmergencies(), 50);
}

TEST(SafetyMonitorUnit, DisabledMonitorCountsButNeverDemotes)
{
    SafetyMonitorParams params = fastParams();
    params.enabled = false;
    SafetyMonitor monitor(params);
    EXPECT_EQ(feed(monitor, 100, true), Action::None);
    EXPECT_EQ(monitor.state(), SafetyState::Monitoring);
    EXPECT_EQ(monitor.totalEmergencies(), 100);
}

TEST(SafetyMonitorUnit, RearmsAfterCleanInterval)
{
    SafetyMonitor monitor(fastParams());
    feed(monitor, 4, true);
    ASSERT_EQ(monitor.state(), SafetyState::Demoted);

    // 0.05 s clean (50 steps) re-arms; the step crossing the threshold
    // returns Rearm.
    Action last = Action::None;
    int steps = 0;
    while (last != Action::Rearm && steps < 200) {
        last = monitor.observe(false, true, kDt);
        ++steps;
    }
    EXPECT_EQ(last, Action::Rearm);
    EXPECT_EQ(monitor.state(), SafetyState::Monitoring);
    EXPECT_EQ(monitor.rearmCount(), 1);
    // Clean time required: ~50 steps of 1 ms.
    EXPECT_NEAR(steps, 50, 2);
}

TEST(SafetyMonitorUnit, EmergencyWhileDemotedResetsCleanClock)
{
    SafetyMonitor monitor(fastParams());
    feed(monitor, 4, true);
    ASSERT_EQ(monitor.state(), SafetyState::Demoted);

    // Get 80% of the way to re-arm, then slip once: the clean clock
    // must restart, so 40 more steps are NOT enough.
    EXPECT_EQ(feed(monitor, 40, false), Action::None);
    EXPECT_EQ(monitor.observe(true, true, kDt), Action::None);
    EXPECT_EQ(feed(monitor, 40, false), Action::None);
    EXPECT_EQ(monitor.state(), SafetyState::Demoted);
    // A further full interval does re-arm (Rearm fires mid-feed).
    feed(monitor, 15, false);
    EXPECT_EQ(monitor.state(), SafetyState::Monitoring);
    EXPECT_EQ(monitor.rearmCount(), 1);
}

TEST(SafetyMonitorUnit, RearmBackoffDoublesCleanRequirement)
{
    SafetyMonitor monitor(fastParams());

    feed(monitor, 4, true);
    ASSERT_EQ(monitor.state(), SafetyState::Demoted);
    int first = 0;
    while (monitor.state() == SafetyState::Demoted && first < 500) {
        monitor.observe(false, true, kDt);
        ++first;
    }

    feed(monitor, 4, true);
    ASSERT_EQ(monitor.state(), SafetyState::Demoted);
    int second = 0;
    while (monitor.state() == SafetyState::Demoted && second < 500) {
        monitor.observe(false, true, kDt);
        ++second;
    }

    // Second demotion needs rearmBackoff (2x) as much clean time.
    EXPECT_NEAR(second, 2 * first, 4);
}

TEST(SafetyMonitorUnit, LatchesAfterMaxRearms)
{
    SafetyMonitorParams params = fastParams();
    params.maxRearms = 1;
    SafetyMonitor monitor(params);

    feed(monitor, 4, true);                 // demotion 1
    ASSERT_EQ(monitor.state(), SafetyState::Demoted);
    feed(monitor, 200, false);              // re-arm 1 (the only one)
    ASSERT_EQ(monitor.state(), SafetyState::Monitoring);

    feed(monitor, 4, true);                 // demotion 2: budget spent
    EXPECT_EQ(monitor.state(), SafetyState::Latched);
    // Latched is permanent: no amount of clean time re-arms.
    EXPECT_EQ(feed(monitor, 5000, false), Action::None);
    EXPECT_EQ(monitor.state(), SafetyState::Latched);
    EXPECT_EQ(monitor.rearmCount(), 1);
    EXPECT_EQ(monitor.demotionCount(), 2);
}

TEST(SafetyMonitorUnit, ZeroMaxRearmsLatchesImmediately)
{
    SafetyMonitorParams params = fastParams();
    params.maxRearms = 0;
    SafetyMonitor monitor(params);
    feed(monitor, 4, true);
    EXPECT_EQ(monitor.state(), SafetyState::Latched);
}

TEST(SafetyMonitorUnit, NegativeMaxRearmsNeverLatches)
{
    SafetyMonitorParams params = fastParams();
    params.maxRearms = -1;
    SafetyMonitor monitor(params);
    for (int round = 0; round < 10; ++round) {
        feed(monitor, 4, true);
        ASSERT_EQ(monitor.state(), SafetyState::Demoted) << round;
        feed(monitor, 100000, false);
        ASSERT_EQ(monitor.state(), SafetyState::Monitoring) << round;
    }
    EXPECT_EQ(monitor.demotionCount(), 10);
    EXPECT_EQ(monitor.rearmCount(), 10);
}

TEST(SafetyMonitorUnit, ResetForgetsHistory)
{
    SafetyMonitor monitor(fastParams());
    feed(monitor, 4, true);
    ASSERT_EQ(monitor.state(), SafetyState::Demoted);
    monitor.reset();
    EXPECT_EQ(monitor.state(), SafetyState::Monitoring);
    EXPECT_EQ(monitor.totalEmergencies(), 0);
    EXPECT_EQ(monitor.demotionCount(), 0);
    EXPECT_EQ(monitor.now(), Seconds{0.0});
}

TEST(SafetyMonitorUnit, ParamValidation)
{
    SafetyMonitorParams params;
    params.emergencyBudget = 0;
    EXPECT_THROW(params.validate(), ConfigError);
    params = SafetyMonitorParams();
    params.windowLength = Seconds{0.0};
    EXPECT_THROW(params.validate(), ConfigError);
    params = SafetyMonitorParams();
    params.rearmInterval = -Seconds{1.0};
    EXPECT_THROW(params.validate(), ConfigError);
    params = SafetyMonitorParams();
    params.rearmBackoff = 0.5;
    EXPECT_THROW(params.validate(), ConfigError);
    params = SafetyMonitorParams();
    params.marginTolerance = -Volts{1e-3};
    EXPECT_THROW(params.validate(), ConfigError);
    params = SafetyMonitorParams();
    params.demotedRestartFraction = -0.1;
    EXPECT_THROW(params.validate(), ConfigError);
    params = SafetyMonitorParams();
    params.demotedRestartFraction = 1.5;
    EXPECT_THROW(params.validate(), ConfigError);
    params = SafetyMonitorParams();
    params.rearmBackoffCap = 0.5;
    EXPECT_THROW(params.validate(), ConfigError);
}

TEST(SafetyMonitorUnit, PartialRestartFractionKeepsCleanCredit)
{
    // demotedRestartFraction = 0.5: a slip while demoted forfeits only
    // half of the accumulated clean time instead of all of it.
    SafetyMonitorParams params = fastParams();
    params.demotedRestartFraction = 0.5;
    SafetyMonitor monitor(params);
    feed(monitor, 4, true);
    ASSERT_EQ(monitor.state(), SafetyState::Demoted);

    // 40 ms clean, then one slip: 41 ms of credit halves to 20.5 ms,
    // leaving 29.5 ms owed against the 50 ms interval...
    feed(monitor, 40, false);
    EXPECT_EQ(monitor.observe(true, true, kDt), Action::None);
    EXPECT_NEAR(monitor.rearmBudget().value(), 0.0295, 1e-9);

    // ...so 28 more clean steps are not enough, but 2 beyond that are.
    EXPECT_EQ(feed(monitor, 28, false), Action::None);
    EXPECT_EQ(monitor.state(), SafetyState::Demoted);
    feed(monitor, 2, false);
    EXPECT_EQ(monitor.state(), SafetyState::Monitoring);
    EXPECT_EQ(monitor.rearmCount(), 1);
}

TEST(SafetyMonitorUnit, ZeroRestartFractionForgivesSlipsEntirely)
{
    SafetyMonitorParams params = fastParams();
    params.demotedRestartFraction = 0.0;
    SafetyMonitor monitor(params);
    feed(monitor, 4, true);
    ASSERT_EQ(monitor.state(), SafetyState::Demoted);

    // The slip costs nothing: the clean clock keeps running through it,
    // so 50 ms of wall time demoted re-arms regardless.
    feed(monitor, 40, false);
    EXPECT_EQ(monitor.observe(true, true, kDt), Action::None);
    feed(monitor, 10, false);
    EXPECT_EQ(monitor.state(), SafetyState::Monitoring);
}

TEST(SafetyMonitorUnit, RearmBackoffCapBoundsCleanRequirement)
{
    SafetyMonitorParams params = fastParams();
    params.maxRearms = -1; // never latch: exercise repeated cycles
    params.rearmBackoffCap = 2.0;
    SafetyMonitor monitor(params);

    // Demotion n requires rearmInterval * min(2^(n-1), cap).
    const double expected[] = {0.05, 0.1, 0.1, 0.1};
    for (int n = 0; n < 4; ++n) {
        feed(monitor, 4, true);
        ASSERT_EQ(monitor.state(), SafetyState::Demoted) << n;
        EXPECT_NEAR(monitor.requiredCleanInterval().value(), expected[n],
                    1e-12)
            << "demotion " << n + 1;
        feed(monitor, 100000, false);
        ASSERT_EQ(monitor.state(), SafetyState::Monitoring) << n;
    }

    // Control: uncapped, the third demotion owes 4x the base interval.
    params.rearmBackoffCap = 0.0;
    SafetyMonitor uncapped(params);
    for (int n = 0; n < 2; ++n) {
        feed(uncapped, 4, true);
        feed(uncapped, 100000, false);
    }
    feed(uncapped, 4, true);
    EXPECT_NEAR(uncapped.requiredCleanInterval().value(), 0.2, 1e-12);
}

/**
 * Chip-level acceptance scenario (ISSUE acceptance criterion): an
 * optimistic CPM bias while undervolting drives the rail below the true
 * vmin; the monitor detects the emergencies, demotes to StaticGuardband
 * within its budget, and after demotion no violations remain.
 */
class ChipDemotionTest : public ::testing::Test
{
  protected:
    ChipDemotionTest() : vrm_(1)
    {
        ChipConfig config;
        // Let the optimistic bias express fully: the default 80 mV
        // undervolt ceiling would clip a 30 mV lie on top of the ~70 mV
        // legitimate reclaim.
        config.undervolt.maxUndervolt = Volts{0.12};
        config.safety.emergencyBudget = 8;
        config.safety.windowLength = Seconds{0.25};
        config.safety.rearmInterval = Seconds{1.0};
        chip_ = std::make_unique<Chip>(config, &vrm_);
        for (size_t i = 0; i < chip_->coreCount(); ++i) {
            chip_->setLoad(i, CoreLoad::running(1.0, 13.0_mV, 24.0_mV));
        }
    }

    pdn::Vrm vrm_;
    std::unique_ptr<Chip> chip_;
};

TEST_F(ChipDemotionTest, OptimisticBiasDemotesAndStopsViolations)
{
    chip_->setMode(GuardbandMode::AdaptiveUndervolt);
    chip_->settle(Seconds{1.5});
    ASSERT_EQ(chip_->mode(), GuardbandMode::AdaptiveUndervolt);
    EXPECT_EQ(chip_->safetyMonitor().totalEmergencies(), 0);

    // Every bank reports 40 mV more margin than exists, from t = 0.1 s.
    // The lie must clear the controller's walk-down dead band (~17 mV
    // of believed headroom) plus the monitor's 10 mV tolerance band
    // with real clearance, so the resulting emergencies are sustained.
    fault::FaultPlan plan;
    plan.cpmOptimisticBias(Seconds{0.1}, Seconds{0.0}, 40.0_mV);
    fault::FaultInjector injector(plan, chip_->coreCount());
    chip_->attachFaultInjector(&injector);

    const Seconds dt = Seconds{1e-3};
    Seconds demotedAt = Seconds{-1.0};
    int emergenciesBeforeDemotion = 0;
    for (int i = 0; i < 4000; ++i) {
        chip_->step(dt);
        if (demotedAt < Seconds{0.0} && chip_->safetyDemoted()) {
            demotedAt = injector.now();
            emergenciesBeforeDemotion =
                int(chip_->safetyMonitor().totalEmergencies());
        }
    }

    // The monitor fired...
    ASSERT_GT(demotedAt, Seconds{0.1});
    EXPECT_EQ(chip_->mode(), GuardbandMode::StaticGuardband);
    EXPECT_EQ(chip_->commandedMode(), GuardbandMode::AdaptiveUndervolt);
    EXPECT_GE(chip_->safetyMonitor().demotionCount(), 1);
    // ...within its budget (8 emergencies, plus at most one window's
    // worth of slack while the last window rolls over)...
    EXPECT_LE(emergenciesBeforeDemotion,
              2 * chip_->config().safety.emergencyBudget);
    // ...and promptly: the firmware walks ~6.25 mV per 32 ms tick, so
    // a 30 mV lie takes well under a second to express and be caught.
    EXPECT_LT(demotedAt, Seconds{1.5});

    // After demotion (allowing the rail to recover), static guardband
    // absorbs the lying sensor: zero further vmin violations.
    chip_->settle(Seconds{0.5});
    const int64_t settled = chip_->safetyMonitor().totalEmergencies();
    for (int i = 0; i < 1000; ++i) {
        chip_->step(dt);
        EXPECT_EQ(chip_->lastStepEmergencies(), 0) << "step " << i;
    }
    EXPECT_EQ(chip_->safetyMonitor().totalEmergencies(), settled);
    EXPECT_GT(chip_->lastWorstMargin(), Volts{0.0});
}

TEST_F(ChipDemotionTest, UserModeCommandResetsWatchdog)
{
    chip_->setMode(GuardbandMode::AdaptiveUndervolt);
    chip_->settle(Seconds{1.0});

    fault::FaultPlan plan;
    plan.cpmOptimisticBias(Seconds{0.0}, Seconds{0.0}, 40.0_mV);
    fault::FaultInjector injector(plan, chip_->coreCount());
    chip_->attachFaultInjector(&injector);
    for (int i = 0; i < 3000; ++i)
        chip_->step(Seconds{1e-3});
    ASSERT_TRUE(chip_->safetyDemoted());

    // Clear the fault and recommand the mode: an explicit operator
    // decision overrides the watchdog's memory.
    chip_->attachFaultInjector(nullptr);
    chip_->setMode(GuardbandMode::AdaptiveUndervolt);
    EXPECT_FALSE(chip_->safetyDemoted());
    EXPECT_EQ(chip_->safetyMonitor().demotionCount(), 0);
    chip_->settle(Seconds{1.0});
    EXPECT_EQ(chip_->mode(), GuardbandMode::AdaptiveUndervolt);
}

} // namespace
} // namespace agsim::chip
