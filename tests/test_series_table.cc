/**
 * @file
 * Series and table-rendering tests.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "stats/series.h"
#include "stats/table.h"

namespace agsim::stats {
namespace {

TEST(Series, BasicAccessors)
{
    Series s("raytrace");
    s.add(1, 13.0);
    s.add(2, 10.0);
    s.add(4, 7.0);
    s.add(8, 3.0);
    EXPECT_EQ(s.name(), "raytrace");
    EXPECT_EQ(s.size(), 4u);
    EXPECT_DOUBLE_EQ(s.firstY(), 13.0);
    EXPECT_DOUBLE_EQ(s.lastY(), 3.0);
    EXPECT_DOUBLE_EQ(s.maxY(), 13.0);
    EXPECT_DOUBLE_EQ(s.minY(), 3.0);
    EXPECT_DOUBLE_EQ(s.meanY(), 8.25);
    EXPECT_DOUBLE_EQ(s.x(2), 4.0);
    EXPECT_DOUBLE_EQ(s.y(2), 7.0);
}

TEST(Series, MonotonicityChecks)
{
    Series down("down");
    down.add(1, 5.0);
    down.add(2, 4.0);
    down.add(3, 4.0);
    EXPECT_TRUE(down.isNonIncreasing());
    EXPECT_FALSE(down.isNonDecreasing());

    Series up("up");
    up.add(1, 1.0);
    up.add(2, 2.0);
    EXPECT_TRUE(up.isNonDecreasing());
    EXPECT_FALSE(up.isNonIncreasing());
}

TEST(Series, MonotonicityTolerance)
{
    Series s("noisy");
    s.add(1, 5.0);
    s.add(2, 5.2); // small bump
    s.add(3, 4.0);
    EXPECT_FALSE(s.isNonIncreasing());
    EXPECT_TRUE(s.isNonIncreasing(0.3));
}

TEST(Series, EmptyStatsThrow)
{
    Series s("empty");
    EXPECT_THROW(s.maxY(), ConfigError);
    EXPECT_THROW(s.minY(), ConfigError);
    EXPECT_THROW(s.meanY(), ConfigError);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter table;
    table.setHeader({"cores", "static", "adaptive"});
    table.addRow({"1", "64.2", "55.9"});
    table.addRow({"8", "128.0", "121.4"});
    const std::string out = table.render();
    EXPECT_NE(out.find("cores"), std::string::npos);
    EXPECT_NE(out.find("128.0"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(TablePrinter, NumericRowFormatting)
{
    TablePrinter table;
    table.addNumericRow("power", {1.23456, 2.0}, 2);
    const std::string out = table.render();
    EXPECT_NE(out.find("1.23"), std::string::npos);
    EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(FormatDouble, Precision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(3.0, 0), "3");
}

TEST(RenderSeriesTable, SharedXColumn)
{
    Series a("a"), b("b");
    for (int x = 1; x <= 3; ++x) {
        a.add(x, x * 1.0);
        b.add(x, x * 2.0);
    }
    const std::string out = renderSeriesTable({a, b}, "cores", 1);
    EXPECT_NE(out.find("cores"), std::string::npos);
    EXPECT_NE(out.find("6.0"), std::string::npos);
}

TEST(RenderSeriesTable, MismatchedLengthsThrow)
{
    Series a("a"), b("b");
    a.add(1, 1.0);
    a.add(2, 2.0);
    b.add(1, 1.0);
    EXPECT_THROW(renderSeriesTable({a, b}, "x"), ConfigError);
    EXPECT_THROW(renderSeriesTable({}, "x"), ConfigError);
}

TEST(RenderAsciiChart, ContainsGlyphsAndLegend)
{
    Series a("alpha"), b("beta");
    for (int x = 0; x < 8; ++x) {
        a.add(x, x);
        b.add(x, 8 - x);
    }
    const std::string out = renderAsciiChart({a, b}, 32, 8);
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('o'), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
}

} // namespace
} // namespace agsim::stats
