/**
 * @file
 * Server and WorkloadSimulation tests: placement validation, metric
 * consistency, run-to-completion vs rate modes.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "system/simulation.h"
#include "workload/library.h"

namespace agsim::system {
namespace {

using chip::GuardbandMode;
using workload::RunMode;
using workload::ThreadedWorkload;
using workload::byName;

Job
makeJob(const std::string &name, std::vector<ThreadPlacement> placement,
        RunMode mode = RunMode::Multithreaded)
{
    return Job{ThreadedWorkload(byName(name), mode), std::move(placement),
               name};
}

TEST(Server, TwoSocketsByDefault)
{
    Server server;
    EXPECT_EQ(server.socketCount(), 2u);
    EXPECT_EQ(server.vrm().railCount(), 2u);
    EXPECT_EQ(server.chip(0).coreCount(), 8u);
}

TEST(Server, SocketsHaveDistinctPersonalities)
{
    Server server;
    EXPECT_NE(server.chip(0).config().seed, server.chip(1).config().seed);
    EXPECT_EQ(server.chip(0).config().railIndex, 0u);
    EXPECT_EQ(server.chip(1).config().railIndex, 1u);
}

TEST(Server, TotalPowerSumsSockets)
{
    Server server;
    server.setMode(GuardbandMode::StaticGuardband);
    server.settle(Seconds{0.2});
    EXPECT_NEAR(server.totalChipPower(),
                server.chip(0).power() + server.chip(1).power(), 1e-9);
    // System power adds the Vcs rails and the platform constant.
    EXPECT_NEAR(server.totalSystemPower(),
                server.totalChipPower() + server.chip(0).vcsPower() +
                    server.chip(1).vcsPower() +
                    server.config().platformPower,
                1e-9);
}

TEST(Placements, Helpers)
{
    const auto onSocket = placeOnSocket(1, 3);
    ASSERT_EQ(onSocket.size(), 3u);
    EXPECT_EQ(onSocket[2].socket, 1u);
    EXPECT_EQ(onSocket[2].core, 2u);

    const auto balanced = placeBalanced(2, 5);
    ASSERT_EQ(balanced.size(), 5u);
    size_t socket0 = 0;
    for (const auto &p : balanced)
        socket0 += p.socket == 0 ? 1 : 0;
    EXPECT_EQ(socket0, 3u);
    EXPECT_EQ(balanced[0].core, 0u);
    EXPECT_EQ(balanced[2].core, 1u); // second thread on socket 0
}

TEST(WorkloadSimulation, RejectsBadPlacements)
{
    Server server;
    WorkloadSimulation sim(&server);
    EXPECT_THROW(sim.addJob(makeJob("raytrace", {})), ConfigError);
    EXPECT_THROW(sim.addJob(makeJob("raytrace", {{5, 0}})), ConfigError);
    EXPECT_THROW(sim.addJob(makeJob("raytrace", {{0, 9}})), ConfigError);
    EXPECT_THROW(sim.addJob(makeJob("raytrace", {{0, 0}, {0, 0}})),
                 ConfigError);
    sim.addJob(makeJob("raytrace", {{0, 0}}));
    // Cross-job collision.
    EXPECT_THROW(sim.addJob(makeJob("lu_cb", {{0, 0}})), ConfigError);
}

TEST(WorkloadSimulation, GatingValidation)
{
    Server server;
    WorkloadSimulation sim(&server);
    sim.addJob(makeJob("raytrace", {{0, 0}}));
    EXPECT_THROW(sim.gateCore(0, 0), ConfigError); // runs a thread
    EXPECT_NO_THROW(sim.gateCore(0, 7));
    EXPECT_THROW(sim.gateCore(9, 0), ConfigError);
}

TEST(WorkloadSimulation, RateRunMetricsConsistent)
{
    Server server;
    server.setMode(GuardbandMode::StaticGuardband);
    WorkloadSimulation sim(&server);
    sim.addJob(makeJob("raytrace", placeOnSocket(0, 4)));

    SimulationConfig config;
    config.measureDuration = Seconds{0.5};
    config.warmup = Seconds{0.3};
    const RunMetrics metrics = sim.run(config);

    EXPECT_NEAR(metrics.executionTime, Seconds{0.5}, Seconds{1e-6});
    ASSERT_EQ(metrics.socketPower.size(), 2u);
    EXPECT_GT(metrics.socketPower[0], metrics.socketPower[1]);
    EXPECT_NEAR(metrics.totalChipPower,
                metrics.socketPower[0] + metrics.socketPower[1], 1e-9);
    // Energy == mean power * time for a near-stationary run.
    EXPECT_NEAR(metrics.chipEnergy,
                metrics.totalChipPower * metrics.executionTime,
                metrics.chipEnergy * 0.02);
    EXPECT_NEAR(metrics.edp, metrics.chipEnergy * metrics.executionTime,
                1e-6);
    ASSERT_EQ(metrics.jobs.size(), 1u);
    EXPECT_GT(metrics.jobs[0].meanRate, InstrPerSec{0.0});
    EXPECT_GT(metrics.meanChipMips, 0.0);
    // 4 raytrace threads at ~8.6k MIPS each, minus losses.
    EXPECT_GT(metrics.meanChipMips, 20000.0);
    EXPECT_LT(metrics.meanChipMips, 40000.0);
}

TEST(WorkloadSimulation, RunToCompletionFinishesWork)
{
    Server server;
    server.setMode(GuardbandMode::StaticGuardband);
    WorkloadSimulation sim(&server);
    Job job = makeJob("swaptions", placeOnSocket(0, 8));
    // Shrink the work so the test is fast: ~2 s of simulated compute.
    workload::BenchmarkProfile small = byName("swaptions");
    small.totalInstructions = Instructions{100e9};
    job.work = ThreadedWorkload(small, RunMode::Multithreaded);
    sim.addJob(std::move(job));

    SimulationConfig config;
    config.warmup = Seconds{0.2};
    const RunMetrics metrics = sim.run(config);
    ASSERT_EQ(metrics.jobs.size(), 1u);
    EXPECT_TRUE(metrics.jobs[0].completed);
    EXPECT_GT(metrics.jobs[0].completionTime, Seconds{0.0});
    EXPECT_GE(metrics.jobs[0].instructions, Instructions{100e9});
    EXPECT_LT(metrics.executionTime, Seconds{10.0});
}

TEST(WorkloadSimulation, OverclockShortensExecution)
{
    auto runWith = [](GuardbandMode mode) {
        Server server;
        server.setMode(mode);
        WorkloadSimulation sim(&server);
        workload::BenchmarkProfile small = byName("swaptions");
        small.totalInstructions = Instructions{150e9};
        sim.addJob(Job{ThreadedWorkload(small, RunMode::Multithreaded),
                       placeOnSocket(0, 1), "swaptions"});
        SimulationConfig config;
        config.warmup = Seconds{0.3};
        return sim.run(config);
    };
    const auto staticRun = runWith(GuardbandMode::StaticGuardband);
    const auto boosted = runWith(GuardbandMode::AdaptiveOverclock);
    ASSERT_TRUE(staticRun.jobs[0].completed);
    ASSERT_TRUE(boosted.jobs[0].completed);
    // Paper Fig. 4b: ~8% speedup at one core for a compute-bound job.
    const double speedup = staticRun.jobs[0].completionTime /
                           boosted.jobs[0].completionTime;
    EXPECT_GT(speedup, 1.05);
    EXPECT_LT(speedup, 1.12);
}

TEST(WorkloadSimulation, MultiJobColocationSharesChip)
{
    Server server;
    server.setMode(GuardbandMode::AdaptiveOverclock);
    WorkloadSimulation sim(&server);
    std::vector<ThreadPlacement> first, second;
    for (size_t i = 0; i < 4; ++i)
        first.push_back({0, i});
    for (size_t i = 4; i < 8; ++i)
        second.push_back({0, i});
    sim.addJob(makeJob("coremark", first, RunMode::Rate));
    sim.addJob(makeJob("mcf", second, RunMode::Rate));

    SimulationConfig config;
    config.measureDuration = Seconds{0.5};
    config.warmup = Seconds{0.3};
    const RunMetrics metrics = sim.run(config);
    ASSERT_EQ(metrics.jobs.size(), 2u);
    EXPECT_GT(metrics.jobs[0].meanRate, metrics.jobs[1].meanRate);
}

TEST(WorkloadSimulation, GatedSpareCoresCutPower)
{
    auto measure = [](bool gateSpares) {
        Server server;
        server.setMode(GuardbandMode::StaticGuardband);
        WorkloadSimulation sim(&server);
        sim.addJob(makeJob("raytrace", placeOnSocket(0, 2)));
        if (gateSpares) {
            for (size_t core = 2; core < 8; ++core)
                sim.gateCore(0, core);
            for (size_t core = 0; core < 8; ++core)
                sim.gateCore(1, core);
        }
        SimulationConfig config;
        config.measureDuration = Seconds{0.3};
        config.warmup = Seconds{0.3};
        return sim.run(config).totalChipPower;
    };
    EXPECT_LT(measure(true), measure(false) - Watts{20.0});
}

TEST(WorkloadSimulation, EmptyRunRejected)
{
    Server server;
    WorkloadSimulation sim(&server);
    EXPECT_THROW(sim.run(SimulationConfig()), ConfigError);
}

} // namespace
} // namespace agsim::system
