/**
 * @file
 * SloEngine tests: multi-window burn-rate fire/resolve edges, the
 * no-data hold, rule validation, and the alert callback contract.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "obs/telemetry/slo.h"
#include "obs/telemetry/time_series.h"

namespace agsim::obs::telemetry {
namespace {

/** A rule over "margin": bad when the bucket mean dips below 0. */
SloRule
marginRule()
{
    SloRule rule;
    rule.name = "margin_floor";
    rule.series = "margin";
    rule.stat = BucketStat::Mean;
    rule.threshold = 0.0;
    rule.violationIsAbove = false;
    rule.budget = 0.25;
    rule.shortWindow = Seconds{2.0};
    rule.longWindow = Seconds{10.0};
    rule.burnRate = 2.0;
    return rule;
}

/** Lookup serving one buffer under the rule's series name. */
SloEngine::SeriesLookup
lookupFor(const TimeSeriesBuffer &buffer)
{
    return [&buffer](const std::string &) {
        return TimeSeriesBuffer::merge({&buffer});
    };
}

TEST(SloRule, ValidateRejectsNonsense)
{
    SloRule rule = marginRule();
    rule.name = "";
    EXPECT_THROW(rule.validate(), ConfigError);
    rule = marginRule();
    rule.budget = 0.0;
    EXPECT_THROW(rule.validate(), ConfigError);
    rule = marginRule();
    rule.longWindow = Seconds{1.0};
    EXPECT_THROW(rule.validate(), ConfigError);
    rule = marginRule();
    rule.burnRate = -1.0;
    EXPECT_THROW(rule.validate(), ConfigError);
}

TEST(SloEngine, DuplicateRuleNameIsFatal)
{
    SloEngine engine;
    engine.addRule(marginRule());
    EXPECT_THROW(engine.addRule(marginRule()), ConfigError);
}

TEST(SloEngine, FiresOnlyWhenBothWindowsBurn)
{
    SloEngine engine;
    engine.addRule(marginRule());
    TimeSeriesBuffer buffer(Seconds{1.0}, 64);

    // 10 s of healthy margin: no alert.
    for (int i = 0; i < 10; ++i)
        buffer.record(Seconds{double(i) + 0.5}, 0.05);
    engine.evaluate(Seconds{10.0}, lookupFor(buffer));
    EXPECT_EQ(engine.totalFires(), 0u);
    EXPECT_EQ(engine.activeCount(), 0u);

    // Two bad buckets: the short window (last 2 buckets) is fully bad
    // (burn 4.0 >= 2.0) but the long window holds 2/10 bad
    // (burn 0.8 < 2.0) — sustained-burn proof missing, still no fire.
    buffer.record(Seconds{10.5}, -0.01);
    buffer.record(Seconds{11.5}, -0.01);
    engine.evaluate(Seconds{12.0}, lookupFor(buffer));
    EXPECT_EQ(engine.totalFires(), 0u);

    // Keep burning: once 5 of the last 10 buckets are bad the long
    // burn reaches 2.0 and the alert fires.
    for (int i = 12; i < 15; ++i)
        buffer.record(Seconds{double(i) + 0.5}, -0.01);
    engine.evaluate(Seconds{15.0}, lookupFor(buffer));
    EXPECT_EQ(engine.totalFires(), 1u);
    EXPECT_EQ(engine.activeCount(), 1u);
    const SloAlertState &state = engine.alerts()[0];
    EXPECT_TRUE(state.active);
    EXPECT_DOUBLE_EQ(state.firedAt.value(), 15.0);
    EXPECT_GE(state.shortBurn, 2.0);
    EXPECT_GE(state.longBurn, 2.0);
}

TEST(SloEngine, ResolvesWhenBothWindowsRecover)
{
    SloEngine engine;
    engine.addRule(marginRule());
    TimeSeriesBuffer buffer(Seconds{1.0}, 64);
    for (int i = 0; i < 10; ++i)
        buffer.record(Seconds{double(i) + 0.5}, -0.01);
    engine.evaluate(Seconds{10.0}, lookupFor(buffer));
    ASSERT_EQ(engine.activeCount(), 1u);

    // Recovery: healthy buckets push the short burn under 1x quickly,
    // but the long window still carries the storm — stays active.
    for (int i = 10; i < 14; ++i)
        buffer.record(Seconds{double(i) + 0.5}, 0.05);
    engine.evaluate(Seconds{14.0}, lookupFor(buffer));
    EXPECT_EQ(engine.activeCount(), 1u);

    // Once the bad buckets age out of the long window too, resolve.
    for (int i = 14; i < 21; ++i)
        buffer.record(Seconds{double(i) + 0.5}, 0.05);
    engine.evaluate(Seconds{21.0}, lookupFor(buffer));
    EXPECT_EQ(engine.activeCount(), 0u);
    const SloAlertState &state = engine.alerts()[0];
    EXPECT_FALSE(state.active);
    EXPECT_DOUBLE_EQ(state.resolvedAt.value(), 21.0);
    // A resolve is not a fire; the count keeps the single edge.
    EXPECT_EQ(engine.totalFires(), 1u);
}

TEST(SloEngine, NoDataHoldsState)
{
    SloEngine engine;
    engine.addRule(marginRule());
    TimeSeriesBuffer buffer(Seconds{1.0}, 64);
    for (int i = 0; i < 10; ++i)
        buffer.record(Seconds{double(i) + 0.5}, -0.01);
    engine.evaluate(Seconds{10.0}, lookupFor(buffer));
    ASSERT_EQ(engine.activeCount(), 1u);

    // Evaluating far past the data (no overlapping buckets) must not
    // resolve the alert: absence of evidence is not recovery.
    engine.evaluate(Seconds{1000.0}, lookupFor(buffer));
    EXPECT_EQ(engine.activeCount(), 1u);

    TimeSeriesBuffer empty(Seconds{1.0}, 64);
    engine.evaluate(Seconds{10.0}, lookupFor(empty));
    EXPECT_EQ(engine.activeCount(), 1u);
}

TEST(SloEngine, CallbackSeesBothEdges)
{
    SloEngine engine;
    engine.addRule(marginRule());
    std::vector<std::pair<std::string, bool>> edges;
    engine.onAlert([&edges](const SloAlertState &state, bool fired) {
        edges.emplace_back(state.rule.name, fired);
    });
    TimeSeriesBuffer buffer(Seconds{1.0}, 64);
    for (int i = 0; i < 10; ++i)
        buffer.record(Seconds{double(i) + 0.5}, -0.01);
    engine.evaluate(Seconds{10.0}, lookupFor(buffer));
    for (int i = 10; i < 25; ++i)
        buffer.record(Seconds{double(i) + 0.5}, 0.05);
    engine.evaluate(Seconds{25.0}, lookupFor(buffer));
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0], (std::pair<std::string, bool>{"margin_floor",
                                                      true}));
    EXPECT_EQ(edges[1], (std::pair<std::string, bool>{"margin_floor",
                                                      false}));
}

TEST(SloEngine, ViolationAboveDirection)
{
    SloRule rule;
    rule.name = "mttr";
    rule.series = "mttr";
    rule.stat = BucketStat::Last;
    rule.threshold = 0.25;
    rule.violationIsAbove = true;
    rule.budget = 0.5;
    rule.shortWindow = Seconds{2.0};
    rule.longWindow = Seconds{4.0};
    rule.burnRate = 1.5;
    SloEngine engine;
    engine.addRule(rule);
    TimeSeriesBuffer buffer(Seconds{1.0}, 64);
    for (int i = 0; i < 4; ++i)
        buffer.record(Seconds{double(i) + 0.5}, 0.9);
    engine.evaluate(Seconds{4.0}, lookupFor(buffer));
    EXPECT_EQ(engine.activeCount(), 1u);
}

} // namespace
} // namespace agsim::obs::telemetry
