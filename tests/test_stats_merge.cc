/**
 * @file
 * Cross-shard merge semantics for the retained stats containers:
 * Histogram::merge and PercentileTracker::merge must behave exactly
 * as if both sample streams had been added to one container —
 * associative, commutative, empty-tolerant — since the telemetry
 * plane folds per-shard instances on read.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "stats/histogram.h"
#include "stats/percentile.h"

namespace agsim::stats {
namespace {

TEST(HistogramMerge, MatchesCombinedStream)
{
    Histogram combined(0.0, 10.0, 20);
    Histogram shardA(0.0, 10.0, 20);
    Histogram shardB(0.0, 10.0, 20);
    Rng rng(0x1234ull);
    for (int i = 0; i < 4000; ++i) {
        // Deliberately spill both tails to exercise under/overflow.
        const double x = rng.uniform(-1.0, 12.0);
        combined.add(x);
        (i % 3 == 0 ? shardA : shardB).add(x);
    }
    shardA.merge(shardB);
    EXPECT_EQ(shardA.total(), combined.total());
    EXPECT_EQ(shardA.underflow(), combined.underflow());
    EXPECT_EQ(shardA.overflow(), combined.overflow());
    for (size_t i = 0; i < combined.bins(); ++i)
        EXPECT_EQ(shardA.binCount(i), combined.binCount(i))
            << "bin " << i;
    EXPECT_DOUBLE_EQ(shardA.cdf(5.0), combined.cdf(5.0));
}

TEST(HistogramMerge, EmptyIsIdentityAndOrderIrrelevant)
{
    Histogram a(0.0, 1.0, 4);
    Histogram b(0.0, 1.0, 4);
    Histogram empty(0.0, 1.0, 4);
    a.add(0.1);
    a.add(0.6);
    b.add(0.6);

    Histogram ab = a;
    ab.merge(b);
    Histogram ba = b;
    ba.merge(a);
    ba.merge(empty);
    EXPECT_EQ(ab.total(), 3u);
    for (size_t i = 0; i < ab.bins(); ++i)
        EXPECT_EQ(ab.binCount(i), ba.binCount(i));

    empty.merge(a);
    EXPECT_EQ(empty.total(), a.total());
}

TEST(HistogramMerge, RejectsMismatchedLayouts)
{
    Histogram a(0.0, 1.0, 4);
    Histogram differentRange(0.0, 2.0, 4);
    Histogram differentBins(0.0, 1.0, 8);
    EXPECT_THROW(a.merge(differentRange), ConfigError);
    EXPECT_THROW(a.merge(differentBins), ConfigError);
}

TEST(PercentileMerge, MatchesCombinedStream)
{
    PercentileTracker combined;
    PercentileTracker shardA;
    PercentileTracker shardB;
    Rng rng(0x77ull);
    for (int i = 0; i < 999; ++i) {
        const double x = rng.uniform(0.0, 100.0);
        combined.add(x);
        (i % 2 == 0 ? shardA : shardB).add(x);
    }
    shardA.merge(shardB);
    ASSERT_EQ(shardA.count(), combined.count());
    for (double p : {1.0, 10.0, 50.0, 90.0, 99.0})
        EXPECT_DOUBLE_EQ(shardA.percentile(p), combined.percentile(p))
            << "p" << p;
}

TEST(PercentileMerge, MergeAfterQueryKeepsExactness)
{
    PercentileTracker a;
    PercentileTracker b;
    for (int i = 0; i < 10; ++i)
        a.add(double(i));
    // Query a first so its lazily-sorted state is primed, then merge:
    // the merged tracker must still answer over the union.
    EXPECT_DOUBLE_EQ(a.percentile(50.0), 4.5);
    for (int i = 10; i < 20; ++i)
        b.add(double(i));
    a.merge(b);
    EXPECT_EQ(a.count(), 20u);
    EXPECT_DOUBLE_EQ(a.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(a.percentile(100.0), 19.0);
    EXPECT_DOUBLE_EQ(a.percentile(50.0), 9.5);
}

TEST(PercentileMerge, EmptyIsIdentity)
{
    PercentileTracker tracker;
    PercentileTracker empty;
    tracker.add(7.0);
    tracker.merge(empty);
    EXPECT_EQ(tracker.count(), 1u);
    empty.merge(tracker);
    EXPECT_DOUBLE_EQ(empty.percentile(50.0), 7.0);
}

} // namespace
} // namespace agsim::stats
