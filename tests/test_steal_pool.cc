/**
 * @file
 * StealPool tests: every task runs exactly once per sweep regardless of
 * worker count or load skew, sweeps are reusable barriers, stealing
 * actually engages under imbalance, and the FleetStepper stealing mode
 * stays bit-identical to serial and static-split execution.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "system/steal_pool.h"

namespace agsim::system {
namespace {

TEST(StealPool, RunsEveryTaskExactlyOnce)
{
    for (size_t workers : {1u, 2u, 4u, 7u}) {
        StealPool pool(workers);
        const size_t tasks = 257;
        std::vector<std::atomic<int>> hits(tasks);
        for (auto &h : hits)
            h.store(0);
        pool.sweep(tasks, [&](size_t, size_t task) {
            hits[task].fetch_add(1, std::memory_order_relaxed);
        });
        for (size_t k = 0; k < tasks; ++k)
            EXPECT_EQ(hits[k].load(), 1) << "workers=" << workers
                                         << " task=" << k;
    }
}

TEST(StealPool, SweepIsABarrier)
{
    StealPool pool(4);
    std::atomic<int> running{0};
    std::atomic<int> done{0};
    pool.sweep(64, [&](size_t, size_t) {
        running.fetch_add(1);
        done.fetch_add(1);
        running.fetch_sub(1);
    });
    // sweep() returned: nothing may still be running.
    EXPECT_EQ(running.load(), 0);
    EXPECT_EQ(done.load(), 64);
}

TEST(StealPool, ReusableAcrossManySweeps)
{
    StealPool pool(3);
    std::atomic<int64_t> total{0};
    for (int round = 0; round < 50; ++round) {
        pool.sweep(31, [&](size_t, size_t task) {
            total.fetch_add(int64_t(task), std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(total.load(), 50 * (31 * 30 / 2));
    EXPECT_EQ(pool.sweeps(), 50);
}

TEST(StealPool, WorkerIndexStaysInRange)
{
    StealPool pool(5);
    std::atomic<bool> bad{false};
    pool.sweep(200, [&](size_t worker, size_t) {
        if (worker >= 5)
            bad.store(true);
    });
    EXPECT_FALSE(bad.load());
}

TEST(StealPool, StealsUnderSkewedLoad)
{
    // Give the first chunk (one worker's seed range) all the expensive
    // tasks: the other workers must steal to finish them.
    StealPool pool(4);
    std::atomic<int> done{0};
    pool.sweep(64, [&](size_t, size_t task) {
        if (task < 16)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        done.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(done.load(), 64);
    EXPECT_GT(pool.steals(), 0);
}

TEST(StealPool, ZeroTasksIsANoOp)
{
    StealPool pool(2);
    pool.sweep(0, [&](size_t, size_t) { FAIL(); });
    EXPECT_EQ(pool.sweeps(), 0);
}

TEST(StealPool, MoreWorkersThanTasks)
{
    StealPool pool(8);
    std::atomic<int> done{0};
    pool.sweep(3, [&](size_t, size_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 3);
}

} // namespace
} // namespace agsim::system
