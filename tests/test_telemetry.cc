/**
 * @file
 * Telemetry tests: 32 ms window cadence, sticky-vs-sample semantics,
 * window means.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "sensors/telemetry.h"

namespace agsim::sensors {
namespace {

StepObservation
makeObs(size_t cores, int sample, int sticky, double power)
{
    StepObservation obs;
    obs.sampleCpm.assign(cores, sample);
    obs.stickyCpm.assign(cores, sticky);
    obs.coreVoltage.assign(cores, Volts{1.15});
    obs.coreFrequency.assign(cores, Hertz{4.2e9});
    obs.chipPower = Watts{power};
    obs.railCurrent = Watts{power} / Volts{1.15};
    obs.setpoint = Volts{1.2};
    return obs;
}

TEST(Telemetry, WindowClosesAfter32ms)
{
    Telemetry telemetry(8);
    const auto obs = makeObs(8, 5, 5, 100.0);
    for (int i = 0; i < 31; ++i)
        telemetry.step(obs, Seconds{1e-3});
    EXPECT_FALSE(telemetry.hasWindows());
    telemetry.step(obs, Seconds{1e-3});
    ASSERT_TRUE(telemetry.hasWindows());
    EXPECT_EQ(telemetry.windows().size(), 1u);
    EXPECT_NEAR(telemetry.latest().time, Seconds{0.032}, Seconds{1e-9});
}

TEST(Telemetry, MultipleWindowsAccumulate)
{
    Telemetry telemetry(4);
    const auto obs = makeObs(4, 5, 5, 100.0);
    for (int i = 0; i < 96; ++i)
        telemetry.step(obs, Seconds{1e-3});
    EXPECT_EQ(telemetry.windows().size(), 3u);
}

TEST(Telemetry, StickyKeepsWindowMinimum)
{
    Telemetry telemetry(1);
    // Mostly quiet reads at 6, one droop to 2 mid-window.
    for (int i = 0; i < 32; ++i) {
        const int sticky = (i == 10) ? 2 : 6;
        telemetry.step(makeObs(1, 6, sticky, 100.0), Seconds{1e-3});
    }
    ASSERT_TRUE(telemetry.hasWindows());
    EXPECT_EQ(telemetry.latest().stickyCpm[0], 2);
    EXPECT_EQ(telemetry.latest().sampleCpm[0], 6);
}

TEST(Telemetry, StickyResetsBetweenWindows)
{
    Telemetry telemetry(1);
    for (int i = 0; i < 32; ++i)
        telemetry.step(makeObs(1, 6, 2, 100.0), Seconds{1e-3});
    for (int i = 0; i < 32; ++i)
        telemetry.step(makeObs(1, 6, 5, 100.0), Seconds{1e-3});
    ASSERT_EQ(telemetry.windows().size(), 2u);
    EXPECT_EQ(telemetry.windows()[0].stickyCpm[0], 2);
    EXPECT_EQ(telemetry.windows()[1].stickyCpm[0], 5);
}

TEST(Telemetry, WindowMeansAreTimeWeighted)
{
    Telemetry telemetry(1);
    for (int i = 0; i < 16; ++i)
        telemetry.step(makeObs(1, 6, 6, 80.0), Seconds{1e-3});
    for (int i = 0; i < 16; ++i)
        telemetry.step(makeObs(1, 6, 6, 120.0), Seconds{1e-3});
    ASSERT_TRUE(telemetry.hasWindows());
    EXPECT_NEAR(telemetry.latest().meanChipPower, Watts{100.0}, Watts{1e-9});
    EXPECT_NEAR(telemetry.latest().meanSetpoint, Volts{1.2}, Volts{1e-12});
    EXPECT_NEAR(telemetry.latest().meanCoreVoltage[0], Volts{1.15},
                Volts{1e-12});
}

TEST(Telemetry, DecompositionAveraged)
{
    Telemetry telemetry(1);
    auto obs = makeObs(1, 6, 6, 100.0);
    obs.decomposition.loadline = Volts{0.040};
    obs.decomposition.irGlobal = Volts{0.020};
    obs.decomposition.irLocal = Volts{0.010};
    for (int i = 0; i < 32; ++i)
        telemetry.step(obs, Seconds{1e-3});
    EXPECT_NEAR(telemetry.latest().meanDecomposition.loadline, Volts{0.040}, Volts{1e-9});
    EXPECT_NEAR(telemetry.latest().meanDecomposition.passive(), Volts{0.070}, Volts{1e-9});
}

TEST(Telemetry, MaxWindowsBounded)
{
    TelemetryParams params;
    params.maxWindows = 2;
    Telemetry telemetry(1, params);
    const auto obs = makeObs(1, 5, 5, 100.0);
    for (int i = 0; i < 32 * 5; ++i)
        telemetry.step(obs, Seconds{1e-3});
    EXPECT_EQ(telemetry.windows().size(), 2u);
}

TEST(Telemetry, MaxWindowsZeroIsUnbounded)
{
    Telemetry telemetry(1);
    const auto obs = makeObs(1, 5, 5, 100.0);
    for (int i = 0; i < 32 * 40; ++i)
        telemetry.step(obs, Seconds{1e-3});
    EXPECT_EQ(telemetry.windows().size(), 40u);
}

TEST(Telemetry, MaxWindowsEvictsOldestFirst)
{
    TelemetryParams params;
    params.maxWindows = 2;
    Telemetry telemetry(1, params);
    const auto obs = makeObs(1, 5, 5, 100.0);
    for (int i = 0; i < 32 * 5; ++i)
        telemetry.step(obs, Seconds{1e-3});
    // Five windows closed; the ring keeps the newest two (4th, 5th).
    ASSERT_EQ(telemetry.windows().size(), 2u);
    EXPECT_NEAR(telemetry.windows()[0].time, Seconds{4 * 0.032},
                Seconds{1e-9});
    EXPECT_NEAR(telemetry.windows()[1].time, Seconds{5 * 0.032},
                Seconds{1e-9});
    EXPECT_NEAR(telemetry.latest().time, Seconds{5 * 0.032},
                Seconds{1e-9});
}

TEST(Telemetry, ClearWindowsKeepsAccumulation)
{
    Telemetry telemetry(1);
    const auto obs = makeObs(1, 5, 5, 100.0);
    for (int i = 0; i < 48; ++i)
        telemetry.step(obs, Seconds{1e-3});
    telemetry.clearWindows();
    EXPECT_FALSE(telemetry.hasWindows());
    // 16 ms of the second window already elapsed; 16 more close it.
    for (int i = 0; i < 16; ++i)
        telemetry.step(obs, Seconds{1e-3});
    EXPECT_TRUE(telemetry.hasWindows());
}

TEST(Telemetry, LatestOnEmptyThrows)
{
    Telemetry telemetry(1);
    EXPECT_THROW(telemetry.latest(), ConfigError);
}

TEST(Telemetry, SizeMismatchPanics)
{
    Telemetry telemetry(2);
    EXPECT_THROW(telemetry.step(makeObs(1, 5, 5, 100.0), Seconds{1e-3}),
                 InternalError);
}

TEST(Telemetry, RejectsBadConstruction)
{
    EXPECT_THROW(Telemetry(0), ConfigError);
    TelemetryParams params;
    params.windowLength = Seconds{0.0};
    EXPECT_THROW(Telemetry(1, params), ConfigError);
}

} // namespace
} // namespace agsim::sensors
