/**
 * @file
 * Thermal model tests, including the paper's 27-38 °C observation.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "power/thermal_model.h"

namespace agsim::power {
namespace {

TEST(ThermalModel, StartsAtAmbient)
{
    ThermalModel model;
    EXPECT_DOUBLE_EQ(model.temperature(), model.steadyState(Watts{0.0}));
}

TEST(ThermalModel, SteadyStateLinearInPower)
{
    ThermalParams params;
    params.ambient = Celsius{25.0};
    params.thermalResistance = Div<Celsius, Watts>{0.1};
    ThermalModel model(params);
    EXPECT_DOUBLE_EQ(model.steadyState(Watts{100.0}), Celsius{35.0});
    EXPECT_DOUBLE_EQ(model.steadyState(Watts{0.0}), Celsius{25.0});
}

TEST(ThermalModel, ConvergesToSteadyState)
{
    ThermalModel model;
    for (int i = 0; i < 100000; ++i)
        model.step(Watts{120.0}, Seconds{1e-3});
    EXPECT_NEAR(model.temperature(), model.steadyState(Watts{120.0}), 0.1);
}

TEST(ThermalModel, ApproachIsMonotone)
{
    ThermalModel model;
    Celsius prev = model.temperature();
    for (int i = 0; i < 1000; ++i) {
        model.step(Watts{100.0}, Seconds{1e-2});
        EXPECT_GE(model.temperature(), prev - Celsius{1e-12});
        prev = model.temperature();
    }
}

TEST(ThermalModel, SettleJumpsToSteadyState)
{
    ThermalModel model;
    model.settle(Watts{140.0});
    EXPECT_DOUBLE_EQ(model.temperature(), model.steadyState(Watts{140.0}));
}

TEST(ThermalModel, PaperTemperatureWindow)
{
    // Paper Sec. 4.1: 27 °C at the lowest load to 38 °C at peak.
    ThermalModel model;
    model.settle(Watts{30.0}); // near-idle chip
    EXPECT_GT(model.temperature(), Celsius{25.0});
    EXPECT_LT(model.temperature(), Celsius{31.0});
    model.settle(Watts{140.0}); // peak chip power
    EXPECT_GT(model.temperature(), Celsius{34.0});
    EXPECT_LT(model.temperature(), Celsius{42.0});
}

TEST(ThermalModel, ResetReturnsToAmbient)
{
    ThermalModel model;
    model.settle(Watts{140.0});
    model.reset();
    EXPECT_DOUBLE_EQ(model.temperature(), Celsius{25.0});
}

TEST(ThermalModel, LargeStepDoesNotOvershoot)
{
    ThermalModel model;
    model.step(Watts{100.0}, Seconds{1e6}); // absurdly long step
    EXPECT_NEAR(model.temperature(), model.steadyState(Watts{100.0}), 1e-6);
}

TEST(ThermalModel, RejectsBadParams)
{
    ThermalParams params;
    params.timeConstant = Seconds{0.0};
    EXPECT_THROW(ThermalModel{params}, ConfigError);

    params = ThermalParams();
    params.thermalResistance = Div<Celsius, Watts>{-0.1};
    EXPECT_THROW(ThermalModel{params}, ConfigError);
}

} // namespace
} // namespace agsim::power
