/**
 * @file
 * TimeSeriesBuffer tests: bucket aggregation, ring wrap and old-sample
 * drops, and the merge() algebra the sharded telemetry lanes rely on
 * (associative, commutative, empty-tolerant).
 */

#include <gtest/gtest.h>

#include <vector>

#include "obs/telemetry/time_series.h"

namespace agsim::obs::telemetry {
namespace {

TEST(TimeBucket, AggregatesCountSumMinMaxLast)
{
    TimeBucket bucket;
    bucket.add(3.0);
    bucket.add(-1.0);
    bucket.add(2.0);
    EXPECT_EQ(bucket.count, 4u - 1u);
    EXPECT_DOUBLE_EQ(bucket.sum, 4.0);
    EXPECT_DOUBLE_EQ(bucket.min, -1.0);
    EXPECT_DOUBLE_EQ(bucket.max, 3.0);
    EXPECT_DOUBLE_EQ(bucket.last, 2.0);
    EXPECT_NEAR(bucket.mean(), 4.0 / 3.0, 1e-12);
}

TEST(TimeSeriesBuffer, SamplesLandInFixedIntervals)
{
    TimeSeriesBuffer buffer(Seconds{0.01}, 16);
    buffer.record(Seconds{0.000}, 1.0);
    buffer.record(Seconds{0.009}, 3.0);
    buffer.record(Seconds{0.010}, 5.0);
    EXPECT_EQ(buffer.firstBucket(), 0);
    EXPECT_EQ(buffer.lastBucket(), 1);
    EXPECT_EQ(buffer.bucket(0).count, 2u);
    EXPECT_DOUBLE_EQ(buffer.bucket(0).sum, 4.0);
    EXPECT_EQ(buffer.bucket(1).count, 1u);
    EXPECT_DOUBLE_EQ(buffer.bucket(1).last, 5.0);
}

TEST(TimeSeriesBuffer, SkippedBucketsReadEmpty)
{
    TimeSeriesBuffer buffer(Seconds{0.01}, 32);
    buffer.record(Seconds{0.005}, 1.0);
    // A fleet block can span many bucket widths; the gap must read as
    // empty buckets, not as stale data from an earlier ring lap.
    buffer.record(Seconds{0.095}, 2.0);
    EXPECT_EQ(buffer.lastBucket(), 9);
    for (int64_t b = 1; b <= 8; ++b)
        EXPECT_EQ(buffer.bucket(b).count, 0u) << "bucket " << b;
    EXPECT_EQ(buffer.bucket(9).count, 1u);
}

TEST(TimeSeriesBuffer, RingWrapEvictsOldestAndDropsStale)
{
    TimeSeriesBuffer buffer(Seconds{1.0}, 4);
    for (int i = 0; i < 8; ++i)
        buffer.record(Seconds{double(i) + 0.5}, double(i));
    // Only the newest 4 buckets [4, 7] are retained.
    EXPECT_EQ(buffer.firstBucket(), 4);
    EXPECT_EQ(buffer.lastBucket(), 7);
    EXPECT_EQ(buffer.bucket(3).count, 0u);
    EXPECT_DOUBLE_EQ(buffer.bucket(4).last, 4.0);

    // A sample older than the retained window is dropped and counted.
    const uint64_t before = buffer.droppedOld();
    buffer.record(Seconds{1.5}, 99.0);
    EXPECT_EQ(buffer.droppedOld(), before + 1);
    EXPECT_EQ(buffer.bucket(1).count, 0u);
}

TEST(TimeSeriesBuffer, StaleLapSlotNeverLeaksAfterWrap)
{
    TimeSeriesBuffer buffer(Seconds{1.0}, 4);
    buffer.record(Seconds{0.5}, 1.0);
    // Jump far ahead: bucket 8 reuses bucket 0's ring slot; buckets
    // 5..7 were never written. All of them must read empty except 8.
    buffer.record(Seconds{8.5}, 2.0);
    EXPECT_EQ(buffer.firstBucket(), 5);
    for (int64_t b = 5; b <= 7; ++b)
        EXPECT_EQ(buffer.bucket(b).count, 0u) << "bucket " << b;
    EXPECT_EQ(buffer.bucket(8).count, 1u);
    EXPECT_DOUBLE_EQ(buffer.bucket(8).last, 2.0);
}

TEST(TimeSeriesBuffer, TimeMayMoveBackwardWithinWindow)
{
    TimeSeriesBuffer buffer(Seconds{1.0}, 8);
    buffer.record(Seconds{0.5}, 0.0);
    buffer.record(Seconds{5.5}, 1.0);
    // Shards drift by up to a tick block; writes behind the head but
    // inside the retained window must land normally.
    buffer.record(Seconds{3.5}, 2.0);
    EXPECT_EQ(buffer.bucket(3).count, 1u);
    EXPECT_EQ(buffer.lastBucket(), 5);
}

TEST(TimeSeriesBuffer, ClearForgetsEverything)
{
    TimeSeriesBuffer buffer(Seconds{0.5}, 8);
    buffer.record(Seconds{1.0}, 7.0);
    buffer.clear();
    EXPECT_TRUE(buffer.empty());
    buffer.record(Seconds{0.1}, 1.0);
    EXPECT_EQ(buffer.firstBucket(), 0);
    EXPECT_EQ(buffer.bucket(2).count, 0u);
}

TEST(MergedSeries, LatestSkipsEmptyBuckets)
{
    TimeSeriesBuffer buffer(Seconds{1.0}, 8);
    buffer.record(Seconds{0.5}, 4.0);
    buffer.record(Seconds{3.5}, 9.0);
    const MergedSeries merged = TimeSeriesBuffer::merge({&buffer});
    EXPECT_DOUBLE_EQ(merged.latest(BucketStat::Last), 9.0);
    EXPECT_DOUBLE_EQ(merged.latest(BucketStat::Mean), 9.0);
    EXPECT_EQ(merged.firstBucket, 0);
    EXPECT_EQ(merged.buckets.size(), 4u);
    EXPECT_DOUBLE_EQ(merged.bucketStart(3).value(), 3.0);
}

TEST(MergedSeries, MergeFoldsAlignedBuckets)
{
    TimeSeriesBuffer a(Seconds{1.0}, 8);
    TimeSeriesBuffer b(Seconds{1.0}, 8);
    a.record(Seconds{0.5}, 1.0);
    a.record(Seconds{1.5}, 3.0);
    b.record(Seconds{0.6}, 5.0);
    b.record(Seconds{2.5}, 7.0);
    const MergedSeries merged = TimeSeriesBuffer::merge({&a, &b});
    ASSERT_EQ(merged.buckets.size(), 3u);
    EXPECT_EQ(merged.buckets[0].count, 2u);
    EXPECT_DOUBLE_EQ(merged.buckets[0].min, 1.0);
    EXPECT_DOUBLE_EQ(merged.buckets[0].max, 5.0);
    EXPECT_EQ(merged.buckets[1].count, 1u);
    EXPECT_EQ(merged.buckets[2].count, 1u);
}

TEST(MergedSeries, MergeIsCommutativeAndSkipsNullsAndEmpties)
{
    TimeSeriesBuffer a(Seconds{0.5}, 16);
    TimeSeriesBuffer b(Seconds{0.5}, 16);
    TimeSeriesBuffer empty(Seconds{0.5}, 16);
    for (int i = 0; i < 10; ++i)
        a.record(Seconds{0.1 * double(i)}, double(i));
    for (int i = 0; i < 7; ++i)
        b.record(Seconds{0.3 * double(i)}, -double(i));

    const MergedSeries ab =
        TimeSeriesBuffer::merge({&a, &b, nullptr, &empty});
    const MergedSeries ba = TimeSeriesBuffer::merge({&b, &a});
    ASSERT_EQ(ab.buckets.size(), ba.buckets.size());
    EXPECT_EQ(ab.firstBucket, ba.firstBucket);
    for (size_t k = 0; k < ab.buckets.size(); ++k) {
        EXPECT_EQ(ab.buckets[k].count, ba.buckets[k].count);
        EXPECT_DOUBLE_EQ(ab.buckets[k].sum, ba.buckets[k].sum);
        EXPECT_DOUBLE_EQ(ab.buckets[k].min, ba.buckets[k].min);
        EXPECT_DOUBLE_EQ(ab.buckets[k].max, ba.buckets[k].max);
    }
}

TEST(MergedSeries, MergeOfNothingIsEmpty)
{
    const MergedSeries merged = TimeSeriesBuffer::merge({});
    EXPECT_TRUE(merged.empty());
    EXPECT_DOUBLE_EQ(merged.latest(BucketStat::Mean), 0.0);
}

} // namespace
} // namespace agsim::obs::telemetry
