/**
 * @file
 * Umbrella-header test: one include pulls in the whole public API and
 * the pieces compose.
 */

#include <gtest/gtest.h>

#include "agsim.h"

namespace agsim {
namespace {

TEST(Umbrella, EverythingComposesFromOneInclude)
{
    // Touch one symbol from each layer.
    using namespace agsim::units;
    power::VfCurve curve;
    EXPECT_NEAR(curve.vddStatic(4.2_GHz), Volts{1.2}, Volts{1e-9});

    stats::Accumulator acc;
    acc.add(1.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 1.0);

    const auto &profile = workload::byName("raytrace");
    EXPECT_EQ(profile.suite, workload::Suite::Parsec);

    core::ScheduledRunSpec spec;
    spec.profile = profile;
    spec.threads = 1;
    spec.simConfig.measureDuration = Seconds{0.1};
    spec.simConfig.warmup = Seconds{0.2};
    const auto result = core::runScheduled(spec);
    EXPECT_GT(result.metrics.totalChipPower, Watts{0.0});
}

} // namespace
} // namespace agsim
