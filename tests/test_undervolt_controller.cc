/**
 * @file
 * Undervolting-firmware decision tests.
 */

#include <gtest/gtest.h>

#include "chip/undervolt_controller.h"
#include "common/error.h"
#include "common/units.h"

namespace agsim::chip {
namespace {

using namespace agsim::units;

TEST(UndervoltController, StepsDownWithHeadroom)
{
    UndervoltController ctl;
    const Volts now = Volts{1.200};
    // Achievable frequency well above target: spare margin exists.
    const Volts next = ctl.decide(now, 4.40_GHz, 4.2_GHz, Volts{1.200});
    EXPECT_NEAR(now - next, ctl.params().voltageStep, 1e-12);
}

TEST(UndervoltController, HoldsInsideDeadband)
{
    UndervoltController ctl;
    const Hertz target = 4.2_GHz;
    const Hertz slightlyAbove = target * (1.0 + ctl.params().downThreshold
                                          * 0.5);
    EXPECT_DOUBLE_EQ(ctl.decide(Volts{1.15}, slightlyAbove, target, Volts{1.2}), Volts{1.15});
}

TEST(UndervoltController, StepsUpOnShortfall)
{
    UndervoltController ctl;
    const Volts next = ctl.decide(Volts{1.12}, 4.10_GHz, 4.2_GHz, Volts{1.2});
    EXPECT_NEAR(next - Volts{1.12}, ctl.params().voltageStep, 1e-12);
}

TEST(UndervoltController, RespectsMaxUndervoltFloor)
{
    UndervoltController ctl;
    const Volts staticSetpoint = Volts{1.200};
    const Volts floor = staticSetpoint - ctl.params().maxUndervolt;
    // Already at the floor: no further lowering even with headroom.
    const Volts atFloor = floor + Volts{1e-6};
    EXPECT_DOUBLE_EQ(ctl.decide(atFloor, 4.5_GHz, 4.2_GHz,
                                staticSetpoint), atFloor);
    // One step above the floor: may lower only if it stays above.
    const Volts oneAbove = floor + ctl.params().voltageStep;
    EXPECT_NEAR(ctl.decide(oneAbove, 4.5_GHz, 4.2_GHz, staticSetpoint),
                floor, 1e-12);
}

TEST(UndervoltController, ConvergesToTargetInWalk)
{
    // Simulated firmware walk: achievable frequency rises as voltage
    // drops margin stays constant; emulate a simple linear plant.
    UndervoltController ctl;
    const Hertz target = 4.2_GHz;
    const Volts staticSetpoint = Volts{1.200};
    Volts setpoint = staticSetpoint;
    auto achievable = [](Volts v) {
        // 5.4 MHz per mV above a 1.08 V zero-margin point.
        return (v - Volts{0.060} - Volts{1.080}) /
                   Div<Volts, Hertz>{0.185e-9} +
               4.2_GHz;
    };
    for (int i = 0; i < 40; ++i)
        setpoint = ctl.decide(setpoint, achievable(setpoint), target,
                              staticSetpoint);
    // Converged: no more movement.
    const Volts settled = ctl.decide(setpoint, achievable(setpoint),
                                     target, staticSetpoint);
    EXPECT_DOUBLE_EQ(settled, setpoint);
    // And the plant still meets the target.
    EXPECT_GE(achievable(setpoint), target);
    EXPECT_LT(staticSetpoint - setpoint, ctl.params().maxUndervolt + Volts{1e-9});
}

TEST(UndervoltController, RejectsBadParams)
{
    UndervoltControllerParams params;
    params.voltageStep = Volts{0.0};
    EXPECT_THROW(UndervoltController{params}, ConfigError);

    params = UndervoltControllerParams();
    params.downThreshold = -0.1;
    EXPECT_THROW(UndervoltController{params}, ConfigError);
}

TEST(UndervoltController, ZeroTargetPanics)
{
    UndervoltController ctl;
    EXPECT_THROW(ctl.decide(Volts{1.2}, Hertz{4.2e9}, Hertz{0.0}, Volts{1.2}), InternalError);
}

} // namespace
} // namespace agsim::chip
