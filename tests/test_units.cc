/**
 * @file
 * Unit-literal and conversion-helper tests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <type_traits>

#include "common/units.h"

namespace agsim {
namespace {

using namespace agsim::units;

TEST(Units, VoltageLiterals)
{
    EXPECT_DOUBLE_EQ(1.2_V, Volts{1.2});
    EXPECT_DOUBLE_EQ(1_V, Volts{1.0});
    EXPECT_DOUBLE_EQ(21.0_mV, Volts{0.021});
    EXPECT_DOUBLE_EQ(150_mV, Volts{0.150});
}

TEST(Units, FrequencyLiterals)
{
    EXPECT_DOUBLE_EQ(4.2_GHz, Hertz{4.2e9});
    EXPECT_DOUBLE_EQ(4_GHz, Hertz{4e9});
    EXPECT_DOUBLE_EQ(28.0_MHz, Hertz{28e6});
    EXPECT_DOUBLE_EQ(4200_MHz, Hertz{4.2e9});
}

TEST(Units, TimeLiterals)
{
    EXPECT_DOUBLE_EQ(32.0_ms, Seconds{0.032});
    EXPECT_DOUBLE_EQ(1_s, Seconds{1.0});
    EXPECT_DOUBLE_EQ(10_us, Seconds{1e-5});
}

TEST(Units, PowerAndResistanceLiterals)
{
    EXPECT_DOUBLE_EQ(140_W, Watts{140.0});
    EXPECT_DOUBLE_EQ(0.38_mOhm, Ohms{0.38e-3});
}

TEST(Units, MipsLiterals)
{
    EXPECT_DOUBLE_EQ(70000.0_MIPS, InstrPerSec{7e10});
}

TEST(Units, ConversionsRoundTrip)
{
    EXPECT_DOUBLE_EQ(toMilliVolts(Volts{0.021}), 21.0);
    EXPECT_DOUBLE_EQ(toMegaHertz(Hertz{4.2e9}), 4200.0);
    EXPECT_DOUBLE_EQ(toGigaHertz(Hertz{4.2e9}), 4.2);
    EXPECT_DOUBLE_EQ(toMips(InstrPerSec{7e10}), 70000.0);
}

TEST(Units, LiteralsComposeInExpressions)
{
    const Volts guardband = 1.2_V - 1.05_V;
    EXPECT_NEAR(guardband, Volts{0.150}, Volts{1e-12});
    const Hertz boost = 4.2_GHz * 0.10;
    EXPECT_NEAR(toMegaHertz(boost), 420.0, 1e-9);
}

TEST(Units, DimensionalArithmeticDerivesCorrectTypes)
{
    // The electrical identities the PDN model leans on, checked both
    // for value and (statically) for resulting type.
    const Watts p = 98.0_W;
    const Volts v = 1.05_V;
    const Amps i = p / v;  // P / V -> I
    static_assert(std::is_same_v<decltype(p / v), Amps>);
    EXPECT_NEAR(i, Amps{93.333333333}, Amps{1e-6});

    const Ohms loadline = 0.54_mOhm;
    const Volts drop = i * loadline;  // I * R -> V (Ohm's law)
    static_assert(std::is_same_v<decltype(i * loadline), Volts>);
    EXPECT_NEAR(drop, Volts{0.0504}, Volts{1e-9});

    const Amps i2 = v / loadline;  // V / R -> I
    static_assert(std::is_same_v<decltype(v / loadline), Amps>);
    EXPECT_NEAR(i2, Amps{1944.444444}, Amps{1e-3});

    const Joules e = p * 2.0_s;  // P * t -> E
    static_assert(std::is_same_v<decltype(p * Seconds{2.0}), Joules>);
    EXPECT_DOUBLE_EQ(e, Joules{196.0});

    const Watts back = e / 2.0_s;  // E / t -> P round-trips
    static_assert(std::is_same_v<decltype(e / Seconds{2.0}), Watts>);
    EXPECT_DOUBLE_EQ(back, p);
}

TEST(Units, DimensionlessRatiosCollapseToDouble)
{
    // Same-dimension division and rate*time cancel all exponents and
    // yield a plain double, so they slot into dimensionless formulas.
    static_assert(std::is_same_v<decltype(Volts{1.2} / Volts{1.0}),
                                 double>);
    EXPECT_DOUBLE_EQ(Volts{1.2} / Volts{0.6}, 2.0);

    static_assert(std::is_same_v<decltype(Hertz{1.0} * Seconds{1.0}),
                                 double>);
    EXPECT_DOUBLE_EQ(4.2_GHz * Seconds{1e-9}, 4.2);

    static_assert(std::is_same_v<
        decltype(InstrPerSec{1.0} * Seconds{1.0}), Instructions>);
    EXPECT_DOUBLE_EQ(70000.0_MIPS * 1_s, Instructions{7e10});
}

TEST(Units, ScalarScalingPreservesDimension)
{
    static_assert(std::is_same_v<decltype(2.0 * Volts{1.0}), Volts>);
    static_assert(std::is_same_v<decltype(Volts{1.0} * 2.0), Volts>);
    static_assert(std::is_same_v<decltype(Volts{1.0} / 2.0), Volts>);
    EXPECT_DOUBLE_EQ(0.5 * 1.2_V, Volts{0.6});

    Hertz f = 3.0_GHz;
    f += 0.2_GHz;
    f -= 0.1_GHz;
    f *= 2.0;
    EXPECT_NEAR(toGigaHertz(f), 6.2, 1e-9);
}

TEST(Units, DerivedAliasesMatchQuantityAlgebra)
{
    // Div<>/Mul<> aliases name the composite dimensions used for model
    // slopes; they interoperate with the base aliases' arithmetic.
    const Div<Volts, Hertz> slope = Volts{0.15} / Hertz{1.4e9};
    const Volts uplift = slope * Hertz{0.7e9};
    EXPECT_NEAR(uplift, Volts{0.075}, Volts{1e-12});

    const Div<Celsius, Watts> rth = Celsius{0.25} / Watts{1.0};
    const Celsius rise = rth * Watts{80.0};
    EXPECT_NEAR(rise, Celsius{20.0}, Celsius{1e-9});

    static_assert(std::is_same_v<Mul<Watts, Seconds>, Joules>);
}

TEST(Units, ZeroOverheadLayout)
{
    // The whole point: the strong types must be bit-identical to the
    // doubles they replaced.
    static_assert(sizeof(Volts) == sizeof(double));
    static_assert(sizeof(InstrPerSec) == sizeof(double));
    static_assert(std::is_trivially_copyable_v<Watts>);
    static_assert(alignof(Hertz) == alignof(double));

    // Value-initialized quantities are zero, matching `double x{};`.
    EXPECT_DOUBLE_EQ(Seconds{}, Seconds{0.0});
}

TEST(Units, ComparisonAndAbs)
{
    EXPECT_TRUE(Volts{1.1} > Volts{1.0});
    EXPECT_TRUE(Seconds{1e-3} <= Seconds{1e-3});
    EXPECT_TRUE(Hertz{2.8e9} != Hertz{4.2e9});
    EXPECT_DOUBLE_EQ(agsim::abs(Volts{-0.02}), Volts{0.02});
    EXPECT_DOUBLE_EQ(std::max(Watts{10.0}, Watts{12.0}), Watts{12.0});
}

} // namespace
} // namespace agsim
