/**
 * @file
 * Unit-literal and conversion-helper tests.
 */

#include <gtest/gtest.h>

#include "common/units.h"

namespace agsim {
namespace {

using namespace agsim::units;

TEST(Units, VoltageLiterals)
{
    EXPECT_DOUBLE_EQ(1.2_V, 1.2);
    EXPECT_DOUBLE_EQ(1_V, 1.0);
    EXPECT_DOUBLE_EQ(21.0_mV, 0.021);
    EXPECT_DOUBLE_EQ(150_mV, 0.150);
}

TEST(Units, FrequencyLiterals)
{
    EXPECT_DOUBLE_EQ(4.2_GHz, 4.2e9);
    EXPECT_DOUBLE_EQ(4_GHz, 4e9);
    EXPECT_DOUBLE_EQ(28.0_MHz, 28e6);
    EXPECT_DOUBLE_EQ(4200_MHz, 4.2e9);
}

TEST(Units, TimeLiterals)
{
    EXPECT_DOUBLE_EQ(32.0_ms, 0.032);
    EXPECT_DOUBLE_EQ(1_s, 1.0);
    EXPECT_DOUBLE_EQ(10_us, 1e-5);
}

TEST(Units, PowerAndResistanceLiterals)
{
    EXPECT_DOUBLE_EQ(140_W, 140.0);
    EXPECT_DOUBLE_EQ(0.38_mOhm, 0.38e-3);
}

TEST(Units, MipsLiterals)
{
    EXPECT_DOUBLE_EQ(70000.0_MIPS, 7e10);
}

TEST(Units, ConversionsRoundTrip)
{
    EXPECT_DOUBLE_EQ(toMilliVolts(0.021), 21.0);
    EXPECT_DOUBLE_EQ(toMegaHertz(4.2e9), 4200.0);
    EXPECT_DOUBLE_EQ(toGigaHertz(4.2e9), 4.2);
    EXPECT_DOUBLE_EQ(toMips(7e10), 70000.0);
}

TEST(Units, LiteralsComposeInExpressions)
{
    const Volts guardband = 1.2_V - 1.05_V;
    EXPECT_NEAR(guardband, 0.150, 1e-12);
    const Hertz boost = 4.2_GHz * 0.10;
    EXPECT_NEAR(toMegaHertz(boost), 420.0, 1e-9);
}

} // namespace
} // namespace agsim
