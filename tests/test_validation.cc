/**
 * @file
 * Configuration validation tests: ChipConfig, ServerConfig, and
 * UndervoltControllerParams must reject nonsensical values with
 * ConfigError at construction time instead of misbehaving at runtime.
 */

#include <gtest/gtest.h>

#include "chip/chip.h"
#include "chip/chip_config.h"
#include "chip/undervolt_controller.h"
#include "common/error.h"
#include "pdn/vrm.h"
#include "system/server.h"

namespace agsim {
namespace {

using chip::ChipConfig;
using chip::UndervoltControllerParams;
using system::Server;
using system::ServerConfig;

TEST(ChipConfigValidation, DefaultsAreValid)
{
    EXPECT_NO_THROW(ChipConfig().validate());
}

TEST(ChipConfigValidation, RejectsNonsense)
{
    ChipConfig config;
    config.coreCount = 0;
    EXPECT_THROW(config.validate(), ConfigError);

    config = ChipConfig();
    config.cpmsPerCore = 0;
    EXPECT_THROW(config.validate(), ConfigError);

    config = ChipConfig();
    config.targetFrequency = Hertz{0.0};
    EXPECT_THROW(config.validate(), ConfigError);

    config = ChipConfig();
    config.firmwareInterval = -Seconds{1e-3};
    EXPECT_THROW(config.validate(), ConfigError);

    config = ChipConfig();
    config.fixedPointIterations = 0;
    EXPECT_THROW(config.validate(), ConfigError);

    config = ChipConfig();
    config.solverTolerance = -Volts{1e-9};
    EXPECT_THROW(config.validate(), ConfigError);

    config = ChipConfig();
    config.rippleTrackingLoss = 1.5;
    EXPECT_THROW(config.validate(), ConfigError);

    // Safety-monitor knobs surface through the chip config too.
    config = ChipConfig();
    config.safety.demotedRestartFraction = 1.5;
    EXPECT_THROW(config.validate(), ConfigError);

    config = ChipConfig();
    config.safety.demotedRestartFraction = -0.25;
    EXPECT_THROW(config.validate(), ConfigError);

    config = ChipConfig();
    config.safety.rearmBackoffCap = 0.9;
    EXPECT_THROW(config.validate(), ConfigError);
}

TEST(ChipConfigValidation, ChipConstructorValidates)
{
    pdn::Vrm vrm(1);
    ChipConfig config;
    config.firmwareInterval = Seconds{0.0};
    EXPECT_THROW(chip::Chip(config, &vrm), ConfigError);
}

TEST(UndervoltParamsValidation, RejectsNonsense)
{
    UndervoltControllerParams params;
    EXPECT_NO_THROW(params.validate());

    params = UndervoltControllerParams();
    params.voltageStep = Volts{0.0};
    EXPECT_THROW(params.validate(), ConfigError);

    params = UndervoltControllerParams();
    params.maxUndervolt = Volts{0.0};
    EXPECT_THROW(params.validate(), ConfigError);

    params = UndervoltControllerParams();
    params.maxUndervolt = -Volts{0.05};
    EXPECT_THROW(params.validate(), ConfigError);

    params = UndervoltControllerParams();
    params.upThreshold = -1.0;
    EXPECT_THROW(params.validate(), ConfigError);

    // Equal or inverted thresholds would limit-cycle the setpoint.
    params = UndervoltControllerParams();
    params.downThreshold = params.upThreshold;
    EXPECT_THROW(params.validate(), ConfigError);

    params = UndervoltControllerParams();
    params.downThreshold = params.upThreshold - 1.0;
    EXPECT_THROW(params.validate(), ConfigError);
}

TEST(UndervoltParamsValidation, ControllerConstructorValidates)
{
    UndervoltControllerParams params;
    params.voltageStep = -Volts{1e-3};
    EXPECT_THROW(chip::UndervoltController{params}, ConfigError);
}

TEST(ServerConfigValidation, DefaultsAreValid)
{
    EXPECT_NO_THROW(ServerConfig().validate());
}

TEST(ServerConfigValidation, RejectsNonsense)
{
    ServerConfig config;
    config.socketCount = 0;
    EXPECT_THROW(config.validate(), ConfigError);

    config = ServerConfig();
    config.platformPower = -Watts{10.0};
    EXPECT_THROW(config.validate(), ConfigError);

    config = ServerConfig();
    config.rail.loadlineResistance = -Ohms{1e-3};
    EXPECT_THROW(config.validate(), ConfigError);

    config = ServerConfig();
    config.rail.minSetpoint = config.rail.maxSetpoint + Volts{0.1};
    EXPECT_THROW(config.validate(), ConfigError);

    config = ServerConfig();
    config.rail.setpointStep = Volts{0.0};
    EXPECT_THROW(config.validate(), ConfigError);

    // Chip template errors surface through the server's validate too.
    config = ServerConfig();
    config.chipTemplate.coreCount = 0;
    EXPECT_THROW(config.validate(), ConfigError);

    config = ServerConfig();
    config.chipTemplate.undervolt.maxUndervolt = -Volts{0.01};
    EXPECT_THROW(config.validate(), ConfigError);

    config = ServerConfig();
    config.chipTemplate.safety.emergencyBudget = 0;
    EXPECT_THROW(config.validate(), ConfigError);
}

TEST(ServerConfigValidation, ServerConstructorValidates)
{
    ServerConfig config;
    config.platformPower = -Watts{1.0};
    EXPECT_THROW(Server{config}, ConfigError);
}

} // namespace
} // namespace agsim
