/**
 * @file
 * Voltage-frequency curve tests, including the paper's calibration
 * anchors: ~0.185 mV/MHz slope, 940 mV at the 2.8 GHz DVFS point,
 * 1.2 V at 4.2 GHz.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "power/vf_curve.h"

namespace agsim::power {
namespace {

using namespace agsim::units;

TEST(VfCurve, DefaultAnchorsMatchPaper)
{
    VfCurve curve;
    // Static setpoint at the 4.2 GHz DVFS top point is ~1.2 V.
    EXPECT_NEAR(curve.vddStatic(4.2_GHz), Volts{1.200}, Volts{1e-9});
    // At 2.8 GHz the setpoint is ~941 mV (Fig. 6a leftmost diagonal).
    EXPECT_NEAR(curve.vddStatic(2.8_GHz), Volts{0.941}, Volts{2e-3});
}

TEST(VfCurve, VminSlopeMatchesFig6a)
{
    VfCurve curve;
    // Each +28 MHz diagonal in Fig. 6a costs ~5.2 mV.
    const Volts dv = curve.vminAt(4.2_GHz) - curve.vminAt(4.2_GHz - 28_MHz);
    EXPECT_NEAR(toMilliVolts(dv), 5.18, 0.1);
}

TEST(VfCurve, FmaxInvertsVmin)
{
    VfCurve curve;
    for (Hertz f = Hertz{2.8e9}; f <= Hertz{4.2e9}; f += Hertz{0.1e9})
        EXPECT_NEAR(curve.fmaxAt(curve.vminAt(f)), f, 1.0);
}

TEST(VfCurve, FmaxClampsToOverclockCeiling)
{
    VfCurve curve;
    const Hertz ceiling = curve.params().refFrequency *
                          curve.params().overclockCeiling;
    EXPECT_DOUBLE_EQ(curve.fmaxAt(Volts{2.0}), ceiling);
    EXPECT_DOUBLE_EQ(curve.fmaxAt(Volts{0.0}), Hertz{0.0});
}

TEST(VfCurve, TenPercentBoostCeiling)
{
    // Paper: "clock frequency can be boosted by as much as 10%".
    VfCurve curve;
    EXPECT_NEAR(curve.params().overclockCeiling, 1.10, 1e-9);
}

TEST(VfCurve, MarginWithCalibratedReserve)
{
    VfCurve curve;
    const Hertz f = 4.2_GHz;
    const Volts v = curve.vminAt(f) + curve.params().calibratedMargin;
    // At exactly the calibrated margin, fmaxWithMargin returns f.
    EXPECT_NEAR(curve.fmaxWithMargin(v), f, 1.0);
    // With zero extra margin, fmaxWithMargin is below f.
    EXPECT_LT(curve.fmaxWithMargin(curve.vminAt(f)), f);
}

TEST(VfCurve, MarginAt)
{
    VfCurve curve;
    const Hertz f = 4.0_GHz;
    EXPECT_NEAR(curve.marginAt(curve.vminAt(f), f), Volts{0.0}, Volts{1e-12});
    EXPECT_NEAR(curve.marginAt(curve.vminAt(f) + Volts{0.05}, f), Volts{0.05}, Volts{1e-12});
}

TEST(VfCurve, MarginToFrequencyUsesSlope)
{
    VfCurve curve;
    // ~5.4 MHz per mV.
    EXPECT_NEAR(curve.marginToFrequency(1.0_mV) / 1e6, Hertz{5.4}, Hertz{0.1});
    // 150 mV guardband is worth ~810 MHz of headroom.
    EXPECT_NEAR(curve.marginToFrequency(curve.params().staticGuardband) /
                1e6, Hertz{810}, Hertz{15});
}

TEST(VfCurve, GuardbandAnatomy)
{
    VfCurve curve;
    const Hertz f = 4.2_GHz;
    EXPECT_NEAR(curve.vddStatic(f) - curve.vminAt(f),
                curve.params().staticGuardband, 1e-12);
}

TEST(VfCurve, RejectsBadParams)
{
    VfCurveParams params;
    params.voltsPerHertz = Div<Volts, Hertz>{0.0};
    EXPECT_THROW(VfCurve{params}, ConfigError);

    params = VfCurveParams();
    params.minFrequency = params.refFrequency;
    EXPECT_THROW(VfCurve{params}, ConfigError);

    params = VfCurveParams();
    params.staticGuardband = -Volts{0.01};
    EXPECT_THROW(VfCurve{params}, ConfigError);

    params = VfCurveParams();
    params.overclockCeiling = 0.9;
    EXPECT_THROW(VfCurve{params}, ConfigError);
}

/** Round-trip property across the full DVFS window. */
class VfRoundTripTest : public ::testing::TestWithParam<double>
{
};

TEST_P(VfRoundTripTest, VminFmaxRoundTrip)
{
    VfCurve curve;
    const Hertz f{GetParam() * 1e9};
    EXPECT_NEAR(curve.fmaxAt(curve.vminAt(f)), f, 1.0);
}

INSTANTIATE_TEST_SUITE_P(DvfsWindow, VfRoundTripTest,
                         ::testing::Values(2.8, 3.0, 3.2, 3.4, 3.6, 3.8,
                                           4.0, 4.1, 4.2));

} // namespace
} // namespace agsim::power
