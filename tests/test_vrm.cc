/**
 * @file
 * VRM tests: loadline sag, setpoint quantization, rail independence.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "pdn/vrm.h"

namespace agsim::pdn {
namespace {

using namespace agsim::units;

TEST(Vrm, LoadlineSagProportionalToCurrent)
{
    Vrm vrm(1);
    const Volts noLoad = vrm.deliver(0, Amps{0.0});
    EXPECT_DOUBLE_EQ(noLoad, vrm.setpoint(0));
    const Amps current = Amps{100.0};
    const Volts loaded = vrm.deliver(0, current);
    EXPECT_NEAR(noLoad - loaded,
                vrm.railParams(0).loadlineResistance * current, 1e-12);
    EXPECT_DOUBLE_EQ(vrm.sensedCurrent(0), current);
}

TEST(Vrm, LoadlineDropAccessor)
{
    Vrm vrm(1);
    vrm.deliver(0, Amps{120.0});
    EXPECT_NEAR(toMilliVolts(vrm.loadlineDrop(0)),
                toMilliVolts(vrm.railParams(0).loadlineResistance *
                             Amps{120.0}),
                1e-9);
}

TEST(Vrm, DefaultLoadlineMatchesCalibration)
{
    // ~0.46 mOhm: 120 A of chip current sags ~55 mV (Fig. 10a scale).
    Vrm vrm(1);
    vrm.deliver(0, Amps{120.0});
    EXPECT_NEAR(toMilliVolts(vrm.loadlineDrop(0)), 55.2, 0.5);
}

TEST(Vrm, SetpointQuantizesUpward)
{
    Vrm vrm(1);
    // Request between DAC steps: must not under-deliver.
    vrm.setSetpoint(0, Volts{1.1501});
    EXPECT_GE(vrm.setpoint(0), Volts{1.1501 - 1e-12});
    const double steps = (vrm.setpoint(0) - vrm.railParams(0).minSetpoint) /
                         vrm.railParams(0).setpointStep;
    EXPECT_NEAR(steps, std::round(steps), 1e-6);
}

TEST(Vrm, SetpointClampsToWindow)
{
    Vrm vrm(1);
    vrm.setSetpoint(0, Volts{0.5});
    EXPECT_DOUBLE_EQ(vrm.setpoint(0), vrm.railParams(0).minSetpoint);
    vrm.setSetpoint(0, Volts{2.0});
    EXPECT_DOUBLE_EQ(vrm.setpoint(0), vrm.railParams(0).maxSetpoint);
}

TEST(Vrm, ExactStepRequestsAreStable)
{
    Vrm vrm(1);
    const Volts start = vrm.setpoint(0);
    const Volts lowered = start - vrm.railParams(0).setpointStep;
    vrm.setSetpoint(0, lowered);
    EXPECT_NEAR(vrm.setpoint(0), lowered, 1e-12);
}

TEST(Vrm, RailsAreIndependent)
{
    Vrm vrm(2);
    vrm.setSetpoint(0, Volts{1.10});
    vrm.setSetpoint(1, Volts{1.20});
    vrm.deliver(0, Amps{50.0});
    vrm.deliver(1, Amps{100.0});
    EXPECT_NE(vrm.setpoint(0), vrm.setpoint(1));
    EXPECT_DOUBLE_EQ(vrm.sensedCurrent(0), Amps{50.0});
    EXPECT_DOUBLE_EQ(vrm.sensedCurrent(1), Amps{100.0});
    EXPECT_GT(vrm.outputAt(1, Amps{100.0}), vrm.outputAt(0, Amps{100.0}));
}

TEST(Vrm, OutputAtDoesNotUpdateSensor)
{
    Vrm vrm(1);
    vrm.deliver(0, Amps{10.0});
    (void)vrm.outputAt(0, Amps{200.0});
    EXPECT_DOUBLE_EQ(vrm.sensedCurrent(0), Amps{10.0});
}

TEST(Vrm, RejectsBadConstruction)
{
    EXPECT_THROW(Vrm(0), ConfigError);

    RailParams bad;
    bad.loadlineResistance = -Ohms{1.0};
    EXPECT_THROW(Vrm(1, bad), ConfigError);

    bad = RailParams();
    bad.minSetpoint = Volts{1.3};
    bad.maxSetpoint = Volts{1.2};
    EXPECT_THROW(Vrm(1, bad), ConfigError);
}

TEST(Vrm, OutOfRangeRailPanics)
{
    Vrm vrm(1);
    EXPECT_THROW(vrm.setpoint(1), InternalError);
    EXPECT_THROW(vrm.deliver(2, Amps{1.0}), InternalError);
}

TEST(Vrm, NegativeCurrentPanics)
{
    Vrm vrm(1);
    EXPECT_THROW(vrm.deliver(0, Amps{-1.0}), InternalError);
}

} // namespace
} // namespace agsim::pdn
