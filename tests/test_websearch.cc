/**
 * @file
 * WebSearch QoS model tests (Fig. 17 machinery).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "qos/websearch.h"

namespace agsim::qos {
namespace {

TEST(WebSearch, ProducesWindows)
{
    WebSearchService service;
    const auto windows = service.simulate(Hertz{4.5e9}, Seconds{3000.0});
    // 3000 s / 150 s window... default window is 300 s: 10 windows.
    EXPECT_EQ(windows.size(),
              size_t(Seconds{3000.0} / service.params().windowLength));
    for (const auto &w : windows) {
        EXPECT_GT(w.queries, 0u);
        EXPECT_GT(w.p90, Seconds{0.0});
        EXPECT_GT(w.p90, w.meanLatency);
    }
}

TEST(WebSearch, ReproducibleWithSameSeed)
{
    WebSearchService a, b;
    const auto wa = a.simulate(Hertz{4.5e9}, Seconds{1500.0});
    const auto wb = b.simulate(Hertz{4.5e9}, Seconds{1500.0});
    ASSERT_EQ(wa.size(), wb.size());
    for (size_t i = 0; i < wa.size(); ++i)
        EXPECT_DOUBLE_EQ(wa[i].p90, wb[i].p90);
}

TEST(WebSearch, ReseedResetsStream)
{
    WebSearchService service;
    const auto first = service.simulate(Hertz{4.5e9}, Seconds{1500.0});
    service.reseed(service.params().seed);
    const auto again = service.simulate(Hertz{4.5e9}, Seconds{1500.0});
    ASSERT_EQ(first.size(), again.size());
    EXPECT_DOUBLE_EQ(first[0].p90, again[0].p90);
}

TEST(WebSearch, LatencyFallsWithFrequency)
{
    WebSearchService service;
    const auto slow = service.simulate(Hertz{4.3e9}, Seconds{6000.0});
    service.reseed(service.params().seed);
    const auto fast = service.simulate(Hertz{4.6e9}, Seconds{6000.0});
    EXPECT_GT(WebSearchService::meanP90(slow),
              WebSearchService::meanP90(fast));
}

TEST(WebSearch, ViolationRateOrderingMatchesFig17)
{
    // Higher co-runner pressure (lower frequency) -> more violations.
    WebSearchService service;
    auto rateAt = [&service](Hertz f) {
        service.reseed(service.params().seed);
        return WebSearchService::violationRate(
            service.simulate(f, Seconds{30000.0}));
    };
    // Frequencies from the simulator's colocation runs: a lone
    // websearch core rides the 10% DPLL ceiling (~4.62 GHz); the heavy
    // co-runner drags the chip to ~4.47 GHz.
    const double solo = rateAt(Hertz{4.62e9});
    const double light = rateAt(Hertz{4.60e9});
    const double medium = rateAt(Hertz{4.58e9});
    const double heavy = rateAt(Hertz{4.47e9});
    EXPECT_LE(solo, light + 0.02);
    EXPECT_LT(light, medium);
    EXPECT_LT(medium, heavy);
    // Paper endpoints: light < 7%-ish, heavy > 25%.
    EXPECT_LT(light, 0.10);
    EXPECT_GT(heavy, 0.22);
}

TEST(WebSearch, InterferenceAddsLatency)
{
    WebSearchService service;
    const auto clean = service.simulate(Hertz{4.5e9}, Seconds{6000.0}, 0.0);
    service.reseed(service.params().seed);
    const auto noisy = service.simulate(Hertz{4.5e9}, Seconds{6000.0}, 0.05);
    EXPECT_GT(WebSearchService::meanP90(noisy),
              WebSearchService::meanP90(clean));
}

TEST(WebSearch, SortedP90IsSorted)
{
    WebSearchService service;
    const auto windows = service.simulate(Hertz{4.45e9}, Seconds{6000.0});
    const auto sorted = WebSearchService::sortedP90(windows);
    ASSERT_EQ(sorted.size(), windows.size());
    for (size_t i = 1; i < sorted.size(); ++i)
        EXPECT_GE(sorted[i], sorted[i - 1]);
}

TEST(WebSearch, EmptyWindowHelpers)
{
    EXPECT_DOUBLE_EQ(WebSearchService::violationRate({}), 0.0);
    EXPECT_DOUBLE_EQ(WebSearchService::meanP90({}), Seconds{0.0});
}

TEST(WebSearch, Validation)
{
    WebSearchParams params;
    params.arrivalRatePerSec = 0.0;
    EXPECT_THROW(WebSearchService{params}, ConfigError);

    params = WebSearchParams();
    params.memoryBoundedness = 2.0;
    EXPECT_THROW(WebSearchService{params}, ConfigError);

    WebSearchService service;
    EXPECT_THROW(service.simulate(Hertz{4.5e9}, Seconds{0.0}), ConfigError);
    EXPECT_THROW(service.simulate(Hertz{4.5e9}, Seconds{100.0}, -0.1), ConfigError);
}

} // namespace
} // namespace agsim::qos
