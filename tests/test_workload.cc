/**
 * @file
 * Workload library and throughput-model tests.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "workload/library.h"
#include "workload/threaded_workload.h"

namespace agsim::workload {
namespace {

TEST(Library, ShipsThePaperWorkloadSets)
{
    // 17 PARSEC + SPLASH-2 scalable workloads (Sec. 3.1 / 5.1.2).
    EXPECT_EQ(scalableSet().size(), 17u);
    // 27 SPECrate workloads (Fig. 10).
    EXPECT_EQ(specRateSet().size(), 27u);
    // coremark and websearch exist.
    EXPECT_TRUE(contains("coremark"));
    EXPECT_TRUE(contains("websearch"));
}

TEST(Library, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &p : library())
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
}

TEST(Library, EveryProfileValidates)
{
    for (const auto &p : library())
        EXPECT_NO_THROW(p.validate()) << p.name;
}

TEST(Library, UnknownNameThrows)
{
    EXPECT_THROW(byName("not-a-benchmark"), ConfigError);
    EXPECT_FALSE(contains("not-a-benchmark"));
}

TEST(Library, FigureFiveSetMembers)
{
    const auto set = figureFiveSet();
    ASSERT_EQ(set.size(), 5u);
    EXPECT_EQ(set[0].name, "lu_cb");
    EXPECT_EQ(set[1].name, "raytrace");
    EXPECT_EQ(set[2].name, "swaptions");
    EXPECT_EQ(set[3].name, "radix");
    EXPECT_EQ(set[4].name, "ocean_cp");
}

TEST(Library, PaperCalibrationStories)
{
    // radix: low power intensity, memory bound, contention-relieved.
    const auto &radix = byName("radix");
    const auto &swaptions = byName("swaptions");
    EXPECT_LT(radix.intensity, swaptions.intensity);
    EXPECT_GT(radix.memoryBoundedness, swaptions.memoryBoundedness);
    EXPECT_GT(radix.contentionSensitivity,
              swaptions.contentionSensitivity);

    // lu_ncb / radiosity: the Fig. 14 cross-chip losers.
    EXPECT_GT(byName("lu_ncb").crossChipPenalty, 0.2);
    EXPECT_GT(byName("radiosity").crossChipPenalty, 0.2);

    // coremark: core-contained (isolates frequency effects, Fig. 15),
    // high MIPS but light power relative to its MIPS class.
    const auto &coremark = byName("coremark");
    EXPECT_DOUBLE_EQ(coremark.memoryBoundedness, 0.0);
    EXPECT_LT(coremark.intensity, byName("lu_cb").intensity);
    EXPECT_GT(coremark.mipsPerThread, byName("lu_cb").mipsPerThread);

    // mcf: the co-runner that raises coremark's frequency (Fig. 15).
    EXPECT_LT(byName("mcf").intensity, coremark.intensity);
}

TEST(Library, MipsPowerCorrelationHolds)
{
    // Fig. 16 rests on MIPS tracking power to first order across the
    // general population (coremark is the deliberate outlier).
    for (const auto &p : library()) {
        if (p.suite == Suite::Coremark || p.suite == Suite::Datacenter)
            continue;
        const double predicted =
            0.46 + 0.066 * (p.mipsPerThread / InstrPerSec{1e9});
        EXPECT_NEAR(p.intensity, predicted, 0.08) << p.name;
    }
}

TEST(ThrottledCoremark, ScalesRateAndPower)
{
    const auto light = throttledCoremark("light", InstrPerSec{13000e6 / 7.0});
    const auto &full = byName("coremark");
    EXPECT_LT(light.mipsPerThread, full.mipsPerThread);
    EXPECT_LT(light.intensity, full.intensity);
    EXPECT_GT(light.intensity, 0.1); // floor survives
    EXPECT_NO_THROW(light.validate());
}

TEST(ThrottledCoremark, RejectsBadRates)
{
    EXPECT_THROW(throttledCoremark("bad", InstrPerSec{0.0}), ConfigError);
    EXPECT_THROW(throttledCoremark("bad", InstrPerSec{20000e6}), ConfigError);
}

TEST(ThreadedWorkload, FrequencyScaleHonoursMemoryBoundedness)
{
    ThreadedWorkload compute(byName("swaptions"), RunMode::Multithreaded);
    ThreadedWorkload memory(byName("mcf"), RunMode::Rate);
    // A 10% overclock speeds the compute-bound job nearly 10%...
    EXPECT_NEAR(compute.frequencyScale(Hertz{4.62e9}), 1.096, 0.01);
    // ...but the memory-bound one much less.
    EXPECT_LT(memory.frequencyScale(Hertz{4.62e9}), 1.02);
    // Both are exactly 1 at nominal.
    EXPECT_DOUBLE_EQ(compute.frequencyScale(Hertz{4.2e9}), 1.0);
    EXPECT_DOUBLE_EQ(memory.frequencyScale(Hertz{4.2e9}), 1.0);
}

TEST(ThreadedWorkload, AmdahlEfficiency)
{
    ThreadedWorkload mt(byName("freqmine"), RunMode::Multithreaded);
    EXPECT_DOUBLE_EQ(mt.amdahlEfficiency(1), 1.0);
    EXPECT_LT(mt.amdahlEfficiency(8), 1.0);
    EXPECT_LT(mt.amdahlEfficiency(8), mt.amdahlEfficiency(2));

    ThreadedWorkload rate(byName("gcc"), RunMode::Rate);
    EXPECT_DOUBLE_EQ(rate.amdahlEfficiency(8), 1.0);
}

TEST(ThreadedWorkload, ContentionLossGrowsWithCrowding)
{
    ThreadedWorkload w(byName("radix"), RunMode::Multithreaded);
    EXPECT_DOUBLE_EQ(w.contentionLoss(1, 8), 0.0);
    const double two = w.contentionLoss(2, 8);
    const double eight = w.contentionLoss(8, 8);
    EXPECT_GT(two, 0.0);
    EXPECT_GT(eight, two);
    EXPECT_LE(eight, 0.60); // capped
}

TEST(ThreadedWorkload, CrossChipLossOnlyWhenSpanning)
{
    ThreadedWorkload w(byName("lu_ncb"), RunMode::Multithreaded);
    EXPECT_DOUBLE_EQ(w.crossChipLoss(false), 0.0);
    EXPECT_GT(w.crossChipLoss(true), 0.2);
}

TEST(ThreadedWorkload, ThreadRateComposition)
{
    ThreadedWorkload w(byName("raytrace"), RunMode::Multithreaded);
    PlacementContext solo{1, 1, false, 8};
    const InstrPerSec base = w.threadRate(solo, Hertz{4.2e9});
    EXPECT_NEAR(base, w.profile().mipsPerThread, InstrPerSec{1e-3});

    PlacementContext crowded{8, 8, false, 8};
    EXPECT_LT(w.threadRate(crowded, Hertz{4.2e9}), base);

    PlacementContext spanning{8, 4, true, 8};
    // Fewer threads per chip relieves contention but adds comm loss.
    const InstrPerSec s = w.threadRate(spanning, Hertz{4.2e9});
    EXPECT_GT(s, InstrPerSec{0.0});
}

TEST(ThreadedWorkload, TotalWorkSemantics)
{
    ThreadedWorkload mt(byName("barnes"), RunMode::Multithreaded);
    EXPECT_DOUBLE_EQ(mt.totalWork(8), mt.profile().totalInstructions);
    ThreadedWorkload rate(byName("bzip2"), RunMode::Rate);
    EXPECT_DOUBLE_EQ(rate.totalWork(8),
                     8.0 * rate.profile().totalInstructions);
}

TEST(ThreadedWorkload, GroupSpeedupIsSublinearUnderContention)
{
    ThreadedWorkload w(byName("ferret"), RunMode::Multithreaded);
    PlacementContext eight{8, 8, false, 8};
    const double speedup = w.groupSpeedup(eight, Hertz{4.2e9});
    EXPECT_GT(speedup, 3.0);
    EXPECT_LT(speedup, 8.0);
}

TEST(Profile, ValidateRejectsBadFields)
{
    BenchmarkProfile p = byName("raytrace");
    p.intensity = 0.0;
    EXPECT_THROW(p.validate(), ConfigError);

    p = byName("raytrace");
    p.memoryBoundedness = 1.5;
    EXPECT_THROW(p.validate(), ConfigError);

    p = byName("raytrace");
    p.name.clear();
    EXPECT_THROW(p.validate(), ConfigError);

    p = byName("raytrace");
    p.crossChipPenalty = 0.9;
    EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Suite, NamesAreHuman)
{
    EXPECT_STREQ(suiteName(Suite::Parsec), "PARSEC");
    EXPECT_STREQ(suiteName(Suite::Splash2), "SPLASH-2");
    EXPECT_STREQ(suiteName(Suite::SpecCpu2006), "SPEC CPU2006");
}

} // namespace
} // namespace agsim::workload
