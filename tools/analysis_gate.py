#!/usr/bin/env python3
"""Content-hash gate for slow static analyzers (clang-tidy, cppcheck).

Both analyzers are pure functions of (file contents, tool, tool
config), so re-running them on files that haven't changed since the
last clean run is wasted CI time. This tool maintains a stamp
directory — one empty file per (tool, source-file) pair, named by a
sha256 over the tool name, the source bytes, and every --config file's
bytes — that CI persists via actions/cache.

  plan  Print the repo-relative candidate files that have NO valid
        stamp (i.e. must be analyzed). With --diff-base REF the
        candidate set is first narrowed to files changed since REF
        (the PR fast path); without it every candidate is considered
        (the main-branch full-tree path).

  mark  Write stamps for files that just passed analysis.

Typical CI shape:

  FILES=$(tools/analysis_gate.py plan --tool clang-tidy [--diff-base R])
  <run clang-tidy on $FILES; fail the job on findings>
  tools/analysis_gate.py mark --tool clang-tidy --files $FILES

Stamps are self-invalidating: editing a source file, the tool's
version string passed via --salt, or any --config file changes the
hash, so stale stamps simply never match and are pruned by `mark`.
"""

import argparse
import hashlib
import subprocess
import sys
from pathlib import Path

DEFAULT_GLOBS = ("src/**/*.cc", "src/**/*.h")


def repo_files(root, globs):
    files = []
    for pattern in globs:
        files.extend(p for p in sorted(root.glob(pattern)) if p.is_file())
    return files


def changed_since(root, base):
    """Repo-relative paths changed versus `base` (merge-base diff)."""
    out = subprocess.run(
        ["git", "diff", "--name-only", "--merge-base", base, "HEAD"],
        cwd=root, capture_output=True, text=True)
    if out.returncode != 0:
        # A shallow checkout may not have the base; fall back to the
        # two-dot diff, then to "everything changed".
        out = subprocess.run(["git", "diff", "--name-only", base],
                             cwd=root, capture_output=True, text=True)
    if out.returncode != 0:
        return None
    return {line.strip() for line in out.stdout.splitlines()
            if line.strip()}


def stamp_name(tool, path, config_blobs, salt):
    digest = hashlib.sha256()
    digest.update(tool.encode())
    digest.update(b"\0" + salt.encode() + b"\0")
    for blob in config_blobs:
        digest.update(blob + b"\0")
    digest.update(path.read_bytes())
    return f"{tool}-{digest.hexdigest()[:24]}.ok"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=("plan", "mark"))
    parser.add_argument("--tool", required=True,
                        help="analyzer name; part of the stamp key")
    parser.add_argument("--root", default=Path(__file__).parent.parent,
                        type=Path)
    parser.add_argument("--cache-dir", default=".analysis-cache",
                        type=Path,
                        help="stamp directory (persisted by CI cache)")
    parser.add_argument("--config", nargs="*", default=[], type=Path,
                        help="config files folded into the stamp key "
                             "(e.g. .clang-tidy); changing one "
                             "invalidates every stamp for the tool")
    parser.add_argument("--salt", default="",
                        help="extra key material, e.g. the tool's "
                             "--version line")
    parser.add_argument("--glob", nargs="*", default=list(DEFAULT_GLOBS),
                        help="candidate file globs (repo-relative)")
    parser.add_argument("--files", nargs="*",
                        help="explicit repo-relative files (mark mode, "
                             "or to override the globs in plan mode)")
    parser.add_argument("--diff-base",
                        help="plan only files changed since this git "
                             "ref (PR fast path)")
    args = parser.parse_args()
    root = args.root.resolve()
    cache = args.cache_dir if args.cache_dir.is_absolute() \
        else root / args.cache_dir
    cache.mkdir(parents=True, exist_ok=True)

    config_blobs = []
    for config in args.config:
        path = config if config.is_absolute() else root / config
        config_blobs.append(path.read_bytes() if path.exists() else b"")

    if args.files is not None:
        candidates = [root / f for f in args.files]
    else:
        candidates = repo_files(root, args.glob)

    if args.command == "plan":
        if args.diff_base:
            changed = changed_since(root, args.diff_base)
            if changed is not None:
                candidates = [p for p in candidates
                              if str(p.relative_to(root)) in changed]
        planned = []
        for path in candidates:
            if not path.exists():
                continue
            stamp = cache / stamp_name(args.tool, path, config_blobs,
                                       args.salt)
            if not stamp.exists():
                planned.append(str(path.relative_to(root)))
        try:
            for rel in planned:
                print(rel)
        except BrokenPipeError:
            pass
        return 0

    # mark: stamp the files that just passed, then prune stamps that
    # match no current file's hash (cache hygiene: edited or deleted
    # files leave orphaned stamps behind otherwise).
    for path in candidates:
        if path.exists():
            (cache / stamp_name(args.tool, path, config_blobs,
                                args.salt)).touch()
    current = {stamp_name(args.tool, p, config_blobs, args.salt)
               for p in repo_files(root, args.glob) if p.exists()}
    for stale in cache.glob(f"{args.tool}-*.ok"):
        if stale.name not in current:
            stale.unlink()
    return 0


if __name__ == "__main__":
    sys.exit(main())
