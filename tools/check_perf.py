#!/usr/bin/env python3
"""Perf-regression gate for CI.

Compares a fresh perf_steps + ext_fault_placement (and, when --fleet
/ --service are given, perf_fleet_steps / svc_fleet_service) run
against the checked-in baseline (bench/baseline.json) and fails when
any higher-is-better metric drops more than the tolerance, or any
lower-is-better metric rises above baseline * (1 + tolerance).
Writes the merged current numbers (plus the verdict) to --out so CI
can upload one BENCH_perf.json artifact per run.

Tolerance: --tolerance, else the PERF_TOLERANCE env var, else 0.10
(the 10%% gate from the issue). CI runners are noisy; the baseline
should be refreshed (re-seeded from a clean run) whenever the hot
path legitimately changes speed.
"""

import argparse
import json
import os
import sys

# Higher-is-better metrics gated per bench. Keys absent from either
# side are skipped (so older baselines keep working when a bench
# grows a new column).
GATED = {
    "perf_steps": [
        "steps_per_sec",
        "active8_steps_per_sec",
        "undervolt_steps_per_sec",
    ],
    "ext_fault_placement": [
        "recovery_fraction",
    ],
    "perf_fleet_steps": [
        "scalar_steps_per_sec",
        "fleet_exact_steps_per_sec",
        "fleet_sampled_steps_per_sec",
        "fleet_telemetry_steps_per_sec",
        "speedup_sampled",
    ],
    "svc_fleet_service": [
        "fleet_service_chip_steps_per_sec",
    ],
}

# Lower-is-better metrics: the gate fails when the current value
# rises above baseline * (1 + tolerance). Service p99 latency is sim
# latency — deterministic given the scenario — so a rise here is a
# control-plane regression, not runner noise.
GATED_CEILINGS = {
    "svc_fleet_service": [
        "fleet_service_p99_latency_ms",
    ],
}

# The telemetry plane's cost on the sampled fleet regime is a ceiling
# gate, not a floor: overhead above this fraction of the sampled rate
# fails the run (the issue's <= 5% acceptance bound).
TELEMETRY_OVERHEAD_LIMIT_PCT = 5.0


def load(path):
    with open(path) as fh:
        return json.load(fh)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baseline.json")
    parser.add_argument("--perf", required=True,
                        help="perf_steps JSON output")
    parser.add_argument("--fault", required=True,
                        help="ext_fault_placement JSON output")
    parser.add_argument("--fleet", default=None,
                        help="perf_fleet_steps JSON output (optional)")
    parser.add_argument("--service", default=None,
                        help="svc_fleet_service JSON output "
                             "(optional)")
    parser.add_argument("--out", default="BENCH_perf.json",
                        help="merged artifact to write")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get("PERF_TOLERANCE",
                                                     "0.10")),
                        help="allowed fractional drop (default 0.10)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = {
        "perf_steps": load(args.perf),
        "ext_fault_placement": load(args.fault),
    }
    if args.fleet:
        current["perf_fleet_steps"] = load(args.fleet)
    if args.service:
        current["svc_fleet_service"] = load(args.service)

    failures = []
    checks = []
    for bench, keys in GATED.items():
        base = baseline.get(bench, {})
        cur = current.get(bench, {})
        for key in keys:
            if key not in base or key not in cur:
                continue
            floor = base[key] * (1.0 - args.tolerance)
            ok = cur[key] >= floor
            checks.append({
                "bench": bench,
                "metric": key,
                "baseline": base[key],
                "current": cur[key],
                "floor": floor,
                "ok": ok,
            })
            if not ok:
                ratio = cur[key] / base[key] if base[key] else 0.0
                failures.append(
                    f"{bench}.{key}: {cur[key]:.4g} < floor "
                    f"{floor:.4g} (baseline {base[key]:.4g}, "
                    f"observed/baseline {ratio:.3f}, "
                    f"tolerance {args.tolerance:.0%})")

    for bench, keys in GATED_CEILINGS.items():
        base = baseline.get(bench, {})
        cur = current.get(bench, {})
        for key in keys:
            if key not in base or key not in cur:
                continue
            ceiling = base[key] * (1.0 + args.tolerance)
            ok = cur[key] <= ceiling
            checks.append({
                "bench": bench,
                "metric": key,
                "baseline": base[key],
                "current": cur[key],
                "ceiling": ceiling,
                "ok": ok,
            })
            if not ok:
                ratio = cur[key] / base[key] if base[key] else 0.0
                failures.append(
                    f"{bench}.{key}: {cur[key]:.4g} > ceiling "
                    f"{ceiling:.4g} (baseline {base[key]:.4g}, "
                    f"observed/baseline {ratio:.3f}, "
                    f"tolerance {args.tolerance:.0%})")

    # Ceiling gate: the telemetry plane must stay cheap relative to
    # the sampled regime it instruments. The bench reports best-of-N
    # rates for both arms, so this is robust to one-sided CPU-steal
    # noise on shared runners.
    fleet = current.get("perf_fleet_steps", {})
    if "telemetry_overhead_pct" in fleet:
        overhead = fleet["telemetry_overhead_pct"]
        ok = overhead <= TELEMETRY_OVERHEAD_LIMIT_PCT
        checks.append({
            "bench": "perf_fleet_steps",
            "metric": "telemetry_overhead_pct",
            "baseline": TELEMETRY_OVERHEAD_LIMIT_PCT,
            "current": overhead,
            "ceiling": TELEMETRY_OVERHEAD_LIMIT_PCT,
            "ok": ok,
        })
        if not ok:
            failures.append(
                f"perf_fleet_steps.telemetry_overhead_pct: "
                f"{overhead:.2f}% > ceiling "
                f"{TELEMETRY_OVERHEAD_LIMIT_PCT:.1f}%")

    # The fault bench carries its own acceptance verdict (recovery
    # fraction >= 0.5); a false there is a failure regardless of the
    # baseline comparison.
    if current["ext_fault_placement"].get("pass") is False:
        failures.append("ext_fault_placement reported pass=false")

    # The service soak carries its own verdict (bit-identical replay
    # and >= 90% sustained load); a false fails the gate outright.
    if current.get("svc_fleet_service", {}).get("pass") is False:
        failures.append("svc_fleet_service reported pass=false")

    verdict = {
        "tolerance": args.tolerance,
        "checks": checks,
        "failures": failures,
        "ok": not failures,
    }
    current["gate"] = verdict
    with open(args.out, "w") as fh:
        json.dump(current, fh, indent=2)
        fh.write("\n")

    for check in checks:
        mark = "ok " if check["ok"] else "FAIL"
        if "ceiling" in check:
            bound = f"ceiling {check['ceiling']:.6g}"
        else:
            bound = f"floor {check['floor']:.6g}"
        print(f"[{mark}] {check['bench']}.{check['metric']}: "
              f"{check['current']:.6g} vs baseline "
              f"{check['baseline']:.6g} ({bound})")
    if failures:
        print("\nperf regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed ({len(checks)} checks, "
          f"tolerance {args.tolerance:.0%}); wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
