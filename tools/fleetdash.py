#!/usr/bin/env python3
"""Live text dashboard over the telemetry streaming JSONL.

Tails the stream written by ``TelemetryHub`` (``telemetry=1 stream=...``
in the ext_* benches, or ``TelemetryConfig::streamPath`` in code) and
renders a terminal dashboard: the latest sample per series, active SLO
alerts with their burn rates, and the flight-recorder dump log.

Stdlib only. Two modes:

  tools/fleetdash.py out/stream.jsonl            # follow live
  tools/fleetdash.py out/stream.jsonl --once     # one snapshot (CI)

Line kinds consumed (anything else is counted but ignored):
  {"kind": "sample", "t": ..., "series": ..., mean/min/max/last/n,
   p50/p99/total_n}
  {"kind": "alert", "t": ..., "rule": ..., "edge": "fire"|"resolve",
   "short_burn": ..., "long_burn": ...}
  {"kind": "dump", "t": ..., "path": ..., "reason": ..., "events": ...}
"""

import argparse
import json
import os
import sys
import time

MAX_RECENT = 8


class DashState:
    """Aggregated view of everything read from the stream so far."""

    def __init__(self):
        self.samples = {}  # series name -> latest sample line
        self.active_alerts = {}  # rule -> latest fire line
        self.recent_alerts = []  # (t, rule, edge) newest last
        self.dumps = []  # dump lines, oldest first
        self.lines = 0
        self.bad_lines = 0
        self.last_t = 0.0

    def ingest(self, raw):
        self.lines += 1
        try:
            record = json.loads(raw)
        except ValueError:
            self.bad_lines += 1
            return
        kind = record.get("kind")
        t = record.get("t")
        if isinstance(t, (int, float)):
            self.last_t = max(self.last_t, t)
        if kind == "sample" and "series" in record:
            self.samples[record["series"]] = record
        elif kind == "alert":
            rule = record.get("rule", "?")
            if record.get("edge") == "fire":
                self.active_alerts[rule] = record
            else:
                self.active_alerts.pop(rule, None)
            self.recent_alerts.append(record)
            del self.recent_alerts[:-MAX_RECENT]
        elif kind == "dump":
            self.dumps.append(record)
        else:
            self.bad_lines += 1


def fmt(value, width=10, digits=4):
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.{digits}g}".rjust(width)
    return str(value).rjust(width)


def render(state, path):
    out = []
    out.append(
        f"fleetdash  {path}  sim_t={state.last_t:.3f}s  "
        f"lines={state.lines}"
        + (f"  unparsed={state.bad_lines}" if state.bad_lines else "")
    )
    out.append("")

    out.append(
        "  series".ljust(26)
        + "".join(
            h.rjust(10)
            for h in ("last", "mean", "min", "max", "n", "p50", "p99")
        )
        + "total_n".rjust(10)
    )
    for name in sorted(state.samples):
        s = state.samples[name]
        out.append(
            ("  " + name).ljust(26)
            + fmt(s.get("last"))
            + fmt(s.get("mean"))
            + fmt(s.get("min"))
            + fmt(s.get("max"))
            + fmt(s.get("n"))
            + fmt(s.get("p50"))
            + fmt(s.get("p99"))
            + fmt(s.get("total_n"))
        )
    if not state.samples:
        out.append("  (no samples yet)")
    out.append("")

    if state.active_alerts:
        out.append(f"  SLO ALERTS ACTIVE: {len(state.active_alerts)}")
        for rule in sorted(state.active_alerts):
            a = state.active_alerts[rule]
            out.append(
                f"    !! {rule}  fired_t={a.get('t', 0):.3f}  "
                f"short_burn={a.get('short_burn', 0):.2f}  "
                f"long_burn={a.get('long_burn', 0):.2f}"
            )
    else:
        out.append("  SLO: all quiet")
    for a in state.recent_alerts:
        out.append(
            f"    {a.get('edge', '?'):>7} t={a.get('t', 0):.3f} "
            f"{a.get('rule', '?')}"
        )
    out.append("")

    out.append(f"  flight dumps: {len(state.dumps)}")
    for d in state.dumps[-MAX_RECENT:]:
        out.append(
            f"    t={d.get('t', 0):.3f} events={d.get('events', 0)} "
            f"reason={d.get('reason', '?')} -> {d.get('path', '?')}"
        )
    return "\n".join(out)


class StreamTailer:
    """Incremental reader for a growing (or rotating) JSONL stream.

    Each ``poll()`` hands every *complete* new line to the callback:

      - a trailing line without its newline is still being written by
        the producer; it is left unconsumed and re-read whole on the
        next poll (no torn JSON ever reaches the parser);
      - a file that shrank below the last read offset was truncated
        or rotated; the tailer restarts from offset 0 so a fresh
        stream is picked up instead of tailing past EOF forever;
      - a missing file is not an error — the producer may not have
        opened it yet.
    """

    def __init__(self, path):
        self.path = path
        self.position = 0

    def poll(self, ingest):
        """Feed new complete lines to ``ingest``; return the count."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return 0
        if size < self.position:
            self.position = 0  # truncated or rotated underneath us
        consumed = 0
        with open(self.path, "r") as stream:
            stream.seek(self.position)
            while True:
                line = stream.readline()
                if not line.endswith("\n"):
                    break
                ingest(line.strip())
                consumed += 1
                self.position = stream.tell()
        return consumed


def follow(path, state, interval, once):
    """Read the stream to EOF, render; in follow mode keep tailing."""
    clear = "" if once else "\x1b[2J\x1b[H"
    tailer = StreamTailer(path)
    while True:
        tailer.poll(state.ingest)
        try:
            print(clear + render(state, path), flush=True)
        except BrokenPipeError:
            # Downstream (e.g. `| head`) closed the pipe; not an error.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
        if once:
            return 0 if os.path.exists(path) else 1
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Live dashboard over a telemetry stream JSONL"
    )
    parser.add_argument("stream", help="path to the stream JSONL file")
    parser.add_argument(
        "--once",
        action="store_true",
        help="render one snapshot and exit (CI artifact mode)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="refresh period in seconds while following",
    )
    args = parser.parse_args(argv)
    return follow(args.stream, DashState(), args.interval, args.once)


if __name__ == "__main__":
    sys.exit(main())
