#!/usr/bin/env python3
"""agsim project lint gate.

Seven project-specific rules that clang-tidy cannot express:

  naked-double      In public headers of the physics modules (src/pdn,
                    src/power, src/chip, src/clock, src/sensors), a
                    declaration `double name` whose identifier claims a
                    physical unit (powerWatts, droopMv, windowSeconds...)
                    must use the matching Quantity alias from
                    common/units.h instead. Rates and ratios (`...PerSec`,
                    fractions, scales) are exempt: their unit is not the
                    suffix unit.

  config-validate   Every field of a `*_config.h` configuration struct
                    must be mentioned by the struct's validate()
                    implementation, so no tunable can silently escape
                    range checking.

  include-guard     Header guards must spell AGSIM_<DIRS>_<FILE>_H from
                    the header's path (src/ prefix stripped), so guards
                    stay collision-free as files move.

  determinism       Simulation code under src/ must not read entropy or
                    wall-clock: no rand()/srand()/std::random_device, no
                    time()/clock()/gettimeofday(), no chrono ::now().
                    All randomness flows from seeded engines
                    (common/rng.h); all timestamps are simulation time.
                    Wall-clock is legal only in observability
                    instrumentation, which carries an allow comment.

  units-boundary    Raw `double` parameters whose names claim a physical
                    unit must not cross public module boundaries (use
                    the Quantity aliases), and unit-named values must
                    not be passed bare into printf-style varargs (use
                    the to*() presentation helpers).

  obs-cardinality   Metric label values must be compile-time string
                    literals, std::to_string of a bounded index, or a
                    *Name() enum-to-string call — never free-form
                    strings — backstopping the registry's runtime
                    series cap with a static guarantee.

  single-writer     Only the owning shard sweep may call
                    TimeSeriesBuffer::record (via TelemetryHub::record):
                    the writer set of each telemetry lane is pinned to
                    the files named in SINGLE_WRITER_RULES, keeping the
                    lock-free rings sound.

Suppressions: a finding on line N (or N+1) is waived by a comment
`lint: allow(<rule>): <reason>`; a whole file opts out of one rule with
`lint: allow-file(<rule>): <reason>`. The reason is mandatory prose —
see docs/STATIC_ANALYSIS.md.

Engines: checks run on a comment/string-stripped view of each file.
The stripper is pure Python by default; with the libclang bindings
installed (`--engine libclang`, or auto-detected) the same view is
produced from Clang's own token stream, which is immune to lexing
corner cases. Findings are identical on a clean tree.

Usage: tools/lint.py [--root DIR] [--json FILE] [--checks a,b,...]
                     [--files F...] [--engine auto|text|libclang]
Exit status 1 when any finding is reported.
"""

import argparse
import json
import re
import sys
from pathlib import Path

PHYSICS_DIRS = ("src/pdn", "src/power", "src/chip", "src/clock",
                "src/sensors")

# Identifier suffixes that claim a unit. A `double` whose name ends in
# one of these is lying about its type.
UNIT_SUFFIX = re.compile(
    r".*(Volts|Millivolts|Mv|Watts|Joules|Hertz|Ghz|Mhz|Hz|Seconds|"
    r"Celsius|DegC|Ohms|MilliOhms|Amps|Mips)$")
# ...unless the name is a rate/ratio built on the unit (perSecond,
# sensitivityPerVolt): the composite is dimensionally something else.
RATE_NAME = re.compile(r".*[Pp]er[A-Z]\w*$")

DECL = re.compile(r"^\s*(?:const\s+)?double\s+([A-Za-z_]\w*)\s*[;={]")
GUARD = re.compile(r"^#ifndef\s+(\w+)\s*$", re.M)
FIELD = re.compile(
    r"^\s{4}(?:[A-Za-z_][\w:]*(?:<[\w:,\s]+>)?)\s+([a-z]\w*)\s*(?:=[^=]|\{|;)")

ALLOW_LINE = re.compile(r"lint:\s*allow\((?P<rule>[\w-]+)\)")
ALLOW_FILE = re.compile(r"lint:\s*allow-file\((?P<rule>[\w-]+)\)")

# Entropy / wall-clock constructs banned from simulation code. Each
# entry: (regex, what to say). Matching is done on comment- and
# string-stripped text, so prose mentions never trip the rule.
DETERMINISM_BANNED = [
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom\s*\(\s*\)"), "random()"),
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0|&|\))"), "time()"),
    (re.compile(r"\bclock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\blocaltime\s*\("), "localtime()"),
    (re.compile(r"\bgmtime\s*\("), "gmtime()"),
    (re.compile(r"\bmktime\s*\("), "mktime()"),
    (re.compile(r"system_clock::now"), "system_clock::now()"),
    (re.compile(r"steady_clock::now"), "steady_clock::now()"),
    (re.compile(r"high_resolution_clock::now"),
     "high_resolution_clock::now()"),
]

# printf-style sinks whose varargs erase types (units.h can't help).
PRINTF_CALL = re.compile(r"\b(?:f|s|sn)?printf\s*\(")
# A bare unit-named identifier (not a call, not a member access, not
# already wrapped by a presentation helper) in such a call's arguments.
BARE_UNIT_ARG = re.compile(
    r"(?<![\w.>:(])([a-z]\w*(?:Volts|Millivolts|Watts|Joules|Hertz|"
    r"Seconds|Celsius|Ohms|MilliOhms|Amps|Mips))\b(?!\s*[(.\w])")

# Label-value expressions considered bounded: a string literal, a
# std::to_string of an index, or an enum-to-string helper (the
# traceKindName / serverRecoveryStateName idiom ending in Name).
LABEL_PAIR = re.compile(r'\{\s*"[^"]*"\s*,\s*((?:[^{}()]|\([^()]*\))*?)\}')
BOUNDED_LABEL_VALUE = re.compile(
    r'^(?:"[^"]*"'
    r"|std::to_string\s*\(.*\)"
    r"|[A-Za-z_][\w:]*Name\s*\(.*\)"
    r")$")
METRIC_CALL = re.compile(r"\b(?:counter|gauge|histogram|timer)\s*\(")

# single-writer contract table: (regex, allowed repo-relative files,
# human description). Extend when a new single-writer API appears.
SINGLE_WRITER_RULES = [
    (re.compile(r"\bbuffers\s*\[[^\]]*\]\s*\.\s*record\s*\("),
     ("src/obs/telemetry/telemetry_hub.h",),
     "TimeSeriesBuffer lane write (buffers[shard].record)"),
    (re.compile(r"\bhub_\s*->\s*record\s*\("),
     ("src/system/fleet_stepper.cc", "src/system/fleet_service.cc",
      "src/recovery/recovery_manager.cc"),
     "TelemetryHub::record (single-writer telemetry lane)"),
]

ALL_CHECKS = ("naked-double", "config-validate", "include-guard",
              "determinism", "units-boundary", "obs-cardinality",
              "single-writer")


# --------------------------------------------------------------------
# Source views: stripped text + suppression map, via one of two engines.
# --------------------------------------------------------------------

def strip_source_text(text):
    """Blank comments and string/char literals, preserving line layout.

    A small C++ lexer: tracks //, /*...*/, "...", '...', and raw
    strings R"delim(...)delim". Stripped spans become spaces so column
    numbers and line counts survive.
    """
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    raw_end = None
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
            elif c == "R" and nxt == '"' and (
                    not out or not re.match(r"[\w]", out[-1][-1:])):
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:])
                if m:
                    raw_end = ")" + m.group(1) + '"'
                    mode = "raw_string"
                    out.append(" " * m.end())
                    i += m.end()
                else:
                    out.append(c)
                    i += 1
            elif c == '"':
                mode = "string"
                out.append('"')
                i += 1
            elif c == "'":
                mode = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif mode == "raw_string":
            if text.startswith(raw_end, i):
                mode = "code"
                out.append('"')
                out.append(" " * (len(raw_end) - 1))
                i += len(raw_end)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif mode == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                mode = "code"
                out.append('"')
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif mode == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                mode = "code"
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


def libclang_index():
    """The shared clang.cindex Index, or None when unavailable."""
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        return cindex.Index.create()
    except Exception:  # missing libclang.so behind the bindings
        return None


def strip_source_libclang(path, text, index):
    """Stripped view from Clang's own token stream.

    Tokenizes (no semantic analysis needed) and keeps everything except
    comments; literal tokens are blanked like the text engine does.
    Falls back to the text engine on any parse hiccup.
    """
    from clang import cindex
    try:
        tu = index.parse(str(path), args=["-std=c++20"],
                         options=cindex.TranslationUnit
                         .PARSE_DETAILED_PROCESSING_RECORD)
    except Exception:
        return strip_source_text(text)
    lines = text.splitlines(keepends=True)
    grid = [list(" " * len(line)) for line in lines]
    for token in tu.cursor.get_tokens():
        if token.kind == cindex.TokenKind.COMMENT:
            continue
        spelling = token.spelling
        if token.kind == cindex.TokenKind.LITERAL and (
                spelling.startswith('"') or spelling.startswith("'")):
            spelling = spelling[0] + spelling[-1]
        row = token.location.line - 1
        col = token.location.column - 1
        for k, ch in enumerate(spelling):
            if row < len(grid) and col + k < len(grid[row]):
                grid[row][col + k] = ch
    for row, line in enumerate(lines):
        if line.endswith("\n"):
            grid[row][-1:] = "\n"
    return "".join("".join(row) for row in grid)


class SourceView:
    """One file's original text, stripped text, and suppressions."""

    def __init__(self, root, path, engine, index):
        self.path = path
        self.rel = str(path.relative_to(root))
        self.text = path.read_text()
        if engine == "libclang" and index is not None:
            self.stripped = strip_source_libclang(path, self.text, index)
        else:
            self.stripped = strip_source_text(self.text)
        self.lines = self.stripped.splitlines()
        self.allow = {}       # rule -> set of line numbers covered
        self.allow_file = set()
        for lineno, line in enumerate(self.text.splitlines(), 1):
            m = ALLOW_FILE.search(line)
            if m:
                self.allow_file.add(m.group("rule"))
                continue
            m = ALLOW_LINE.search(line)
            if m:
                # Covers its own line plus the next line holding code,
                # skipping blank and comment-only lines so a multi-line
                # prose comment still reaches its statement.
                covered = {lineno}
                for follow in range(lineno + 1, len(self.lines) + 1):
                    covered.add(follow)
                    if self.lines[follow - 1].strip():
                        break
                self.allow.setdefault(m.group("rule"), set()).update(
                    covered)

    def suppressed(self, rule, lineno):
        if rule in self.allow_file:
            return True
        return lineno in self.allow.get(rule, set())


class Tree:
    """Lazily built SourceViews over one root, shared across checks."""

    def __init__(self, root, engine, files=None):
        self.root = root
        self.engine = engine
        self.index = libclang_index() if engine != "text" else None
        if engine == "libclang" and self.index is None:
            raise SystemExit("lint: --engine libclang requested but the "
                             "clang python bindings are unavailable")
        self.only = ({(root / f).resolve() for f in files}
                     if files else None)
        self.views = {}

    def wants(self, path):
        return self.only is None or path.resolve() in self.only

    def view(self, path):
        if path not in self.views:
            self.views[path] = SourceView(self.root, path, self.engine,
                                          self.index)
        return self.views[path]

    def glob(self, patterns):
        seen = []
        for pattern in patterns:
            for path in sorted(self.root.glob(pattern)):
                if path.is_file() and self.wants(path):
                    seen.append(path)
        return seen


def report(tree, findings, rule, path, lineno, message):
    view = tree.view(path)
    if view.suppressed(rule, lineno):
        return
    findings.append({
        "rule": rule,
        "file": view.rel,
        "line": lineno,
        "message": message,
    })


# --------------------------------------------------------------------
# Original three checks (PR 4), now suppression- and --files-aware.
# --------------------------------------------------------------------

def find_headers(root):
    for base in ("src", "tests", "bench", "examples"):
        yield from sorted((root / base).rglob("*.h")) if (
            root / base).is_dir() else ()


def check_naked_double(tree, findings):
    for d in PHYSICS_DIRS:
        for header in tree.glob((d + "/*.h",)):
            view = tree.view(header)
            for lineno, line in enumerate(view.lines, 1):
                m = DECL.match(line)
                if not m:
                    continue
                name = m.group(1)
                if UNIT_SUFFIX.match(name) and not RATE_NAME.match(name):
                    report(tree, findings, "naked-double", header, lineno,
                           f"'double {name}' claims a unit in its name; "
                           "use the Quantity alias from common/units.h")


def struct_fields(text):
    """Field names of every top-level struct body in a header."""
    fields = []
    for body in re.finditer(r"^struct\s+\w+\s*\n\{\n(.*?)^\};", text,
                            re.M | re.S):
        depth = 0
        for line in body.group(1).splitlines():
            if depth == 0:
                m = FIELD.match(line)
                if m and m.group(1) != "return":
                    fields.append(m.group(1))
            depth += line.count("{") - line.count("}")
    return fields


def check_config_validate(tree, findings):
    for header in tree.glob(("src/**/*_config.h",)):
        text = header.read_text()
        impl = text
        sibling = header.with_suffix(".cc")
        if sibling.exists():
            impl += sibling.read_text()
        validate_bodies = "".join(
            m.group(0) for m in re.finditer(
                r"validate\(\)\s*const\s*\n\{.*?^\}", impl, re.M | re.S))
        if not validate_bodies:
            report(tree, findings, "config-validate", header, 1,
                   "config header has no validate() implementation")
            continue
        for field in struct_fields(text):
            if not re.search(r"\b" + re.escape(field) + r"\b",
                             validate_bodies):
                report(tree, findings, "config-validate", header, 1,
                       f"field '{field}' is never mentioned by validate()")


def expected_guard(root, header):
    rel = header.relative_to(root)
    parts = list(rel.parts)
    if parts[0] == "src":
        parts = parts[1:]
    parts[-1] = parts[-1].replace(".h", "")
    return "AGSIM_" + "_".join(p.upper().replace("-", "_")
                               for p in parts) + "_H"


def check_include_guards(tree, findings):
    for header in find_headers(tree.root):
        if not tree.wants(header):
            continue
        text = header.read_text()
        m = GUARD.search(text)
        want = expected_guard(tree.root, header)
        if not m:
            report(tree, findings, "include-guard", header, 1,
                   f"missing include guard (expected {want})")
        elif m.group(1) != want:
            report(tree, findings, "include-guard", header,
                   text[:m.start()].count("\n") + 1,
                   f"guard {m.group(1)} should be {want}")


# --------------------------------------------------------------------
# determinism: no entropy / wall-clock in simulation code.
# --------------------------------------------------------------------

def check_determinism(tree, findings):
    for path in tree.glob(("src/**/*.h", "src/**/*.cc")):
        view = tree.view(path)
        for lineno, line in enumerate(view.lines, 1):
            for banned, label in DETERMINISM_BANNED:
                if banned.search(line):
                    report(tree, findings, "determinism", path, lineno,
                           f"{label} in simulation code; randomness must "
                           "come from seeded engines (common/rng.h) and "
                           "timestamps from simulation time")


# --------------------------------------------------------------------
# units-boundary: no raw-double unit params in public headers, no bare
# unit-named values into printf varargs.
# --------------------------------------------------------------------

PARAM_DECL = re.compile(r"\bdouble\s+([A-Za-z_]\w*)\s*[,)]")


def check_units_boundary(tree, findings):
    for path in tree.glob(("src/**/*.h",)):
        view = tree.view(path)
        for lineno, line in enumerate(view.lines, 1):
            for m in PARAM_DECL.finditer(line):
                name = m.group(1)
                if UNIT_SUFFIX.match(name) and not RATE_NAME.match(name):
                    report(tree, findings, "units-boundary", path, lineno,
                           f"parameter 'double {name}' claims a unit; "
                           "pass the Quantity type across the module "
                           "boundary")
    for path in tree.glob(("src/**/*.h", "src/**/*.cc", "bench/*.h",
                           "bench/*.cc", "examples/*.cpp")):
        view = tree.view(path)
        for lineno, line in enumerate(view.lines, 1):
            if not PRINTF_CALL.search(line):
                continue
            for m in BARE_UNIT_ARG.finditer(line):
                report(tree, findings, "units-boundary", path, lineno,
                       f"'{m.group(1)}' passed bare into printf varargs; "
                       "use a to*() presentation helper (units.h)")


# --------------------------------------------------------------------
# obs-cardinality: metric label values must be bounded expressions.
# --------------------------------------------------------------------

def check_obs_cardinality(tree, findings):
    for path in tree.glob(("src/**/*.h", "src/**/*.cc", "bench/*.h",
                           "bench/*.cc")):
        view = tree.view(path)
        for lineno, line in enumerate(view.lines, 1):
            # The label list may continue the call's line, so accept a
            # metric call on this line or the one before:
            # `counter("n",\n    {{"k", v}})`.
            context = line
            if lineno > 1:
                context = view.lines[lineno - 2] + " " + context
            if not (METRIC_CALL.search(context) or
                    "MetricLabels" in context):
                continue
            for m in LABEL_PAIR.finditer(line):
                value = m.group(1).strip()
                if not value:
                    continue
                if not BOUNDED_LABEL_VALUE.match(value):
                    report(tree, findings, "obs-cardinality", path, lineno,
                           f"metric label value '{value}' is not a string "
                           "literal, std::to_string(index), or *Name() "
                           "helper; unbounded label domains explode "
                           "series cardinality")


# --------------------------------------------------------------------
# single-writer: telemetry lane writers are pinned to their owners.
# --------------------------------------------------------------------

def check_single_writer(tree, findings):
    for path in tree.glob(("src/**/*.h", "src/**/*.cc", "bench/*.h",
                           "bench/*.cc", "examples/*.cpp")):
        view = tree.view(path)
        for pattern, owners, what in SINGLE_WRITER_RULES:
            if view.rel in owners:
                continue
            for lineno, line in enumerate(view.lines, 1):
                if pattern.search(line):
                    report(tree, findings, "single-writer", path, lineno,
                           f"{what} outside its owner file(s) "
                           f"{', '.join(owners)}; the lane's "
                           "single-writer contract (AG_SINGLE_WRITER) "
                           "forbids new callers")


CHECK_FUNCS = {
    "naked-double": check_naked_double,
    "config-validate": check_config_validate,
    "include-guard": check_include_guards,
    "determinism": check_determinism,
    "units-boundary": check_units_boundary,
    "obs-cardinality": check_obs_cardinality,
    "single-writer": check_single_writer,
}


def run_checks(root, checks=ALL_CHECKS, engine="auto", files=None):
    """Run the named checks over `root`; returns the findings list."""
    tree = Tree(Path(root), engine, files)
    findings = []
    for name in checks:
        CHECK_FUNCS[name](tree, findings)
    findings.sort(key=lambda f: (f["file"], f["line"], f["rule"]))
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=Path(__file__).parent.parent,
                        type=Path)
    parser.add_argument("--json", type=Path,
                        help="also write findings as JSON")
    parser.add_argument("--checks", default=",".join(ALL_CHECKS),
                        help="comma-separated subset of: "
                             + ", ".join(ALL_CHECKS))
    parser.add_argument("--files", nargs="*",
                        help="restrict to these repo-relative files "
                             "(changed-file CI mode)")
    parser.add_argument("--engine", default="auto",
                        choices=("auto", "text", "libclang"),
                        help="source lexer: pure-python (text) or the "
                             "clang token stream (libclang); auto "
                             "prefers libclang when importable")
    args = parser.parse_args()
    root = args.root.resolve()

    checks = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in checks if c not in CHECK_FUNCS]
    if unknown:
        parser.error(f"unknown check(s): {', '.join(unknown)}")

    findings = run_checks(root, checks, args.engine, args.files)

    for f in findings:
        print(f"{f['file']}:{f['line']}: [{f['rule']}] {f['message']}")
    print(f"lint: {len(findings)} finding(s)")
    if args.json:
        args.json.write_text(json.dumps(findings, indent=2) + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
