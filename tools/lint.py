#!/usr/bin/env python3
"""agsim project lint gate.

Three project-specific rules that clang-tidy cannot express:

  naked-double      In public headers of the physics modules (src/pdn,
                    src/power, src/chip, src/clock, src/sensors), a
                    declaration `double name` whose identifier claims a
                    physical unit (powerWatts, droopMv, windowSeconds...)
                    must use the matching Quantity alias from
                    common/units.h instead. Rates and ratios (`...PerSec`,
                    fractions, scales) are exempt: their unit is not the
                    suffix unit.

  config-validate   Every field of a `*_config.h` configuration struct
                    must be mentioned by the struct's validate()
                    implementation, so no tunable can silently escape
                    range checking.

  include-guard     Header guards must spell AGSIM_<DIRS>_<FILE>_H from
                    the header's path (src/ prefix stripped), so guards
                    stay collision-free as files move.

Usage: tools/lint.py [--root DIR] [--json FILE]
Exit status 1 when any finding is reported.
"""

import argparse
import json
import re
import sys
from pathlib import Path

PHYSICS_DIRS = ("src/pdn", "src/power", "src/chip", "src/clock",
                "src/sensors")

# Identifier suffixes that claim a unit. A `double` whose name ends in
# one of these is lying about its type.
UNIT_SUFFIX = re.compile(
    r".*(Volts|Millivolts|Mv|Watts|Joules|Hertz|Ghz|Mhz|Hz|Seconds|"
    r"Celsius|DegC|Ohms|MilliOhms|Amps|Mips)$")
# ...unless the name is a rate/ratio built on the unit (perSecond,
# sensitivityPerVolt): the composite is dimensionally something else.
RATE_NAME = re.compile(r".*[Pp]er[A-Z]\w*$")

DECL = re.compile(r"^\s*(?:const\s+)?double\s+([A-Za-z_]\w*)\s*[;={]")
GUARD = re.compile(r"^#ifndef\s+(\w+)\s*$", re.M)
FIELD = re.compile(
    r"^\s{4}(?:[A-Za-z_][\w:]*(?:<[\w:,\s]+>)?)\s+([a-z]\w*)\s*(?:=[^=]|\{|;)")


def find_headers(root):
    for base in ("src", "tests", "bench", "examples"):
        yield from sorted((root / base).rglob("*.h")) if (
            root / base).is_dir() else ()


def check_naked_double(root, findings):
    for d in PHYSICS_DIRS:
        for header in sorted((root / d).glob("*.h")):
            for lineno, line in enumerate(
                    header.read_text().splitlines(), 1):
                m = DECL.match(line)
                if not m:
                    continue
                name = m.group(1)
                if UNIT_SUFFIX.match(name) and not RATE_NAME.match(name):
                    findings.append({
                        "rule": "naked-double",
                        "file": str(header.relative_to(root)),
                        "line": lineno,
                        "message": f"'double {name}' claims a unit in its "
                                   "name; use the Quantity alias from "
                                   "common/units.h",
                    })


def struct_fields(text):
    """Field names of every top-level struct body in a header."""
    fields = []
    for body in re.finditer(r"^struct\s+\w+\s*\n\{\n(.*?)^\};", text,
                            re.M | re.S):
        depth = 0
        for line in body.group(1).splitlines():
            if depth == 0:
                m = FIELD.match(line)
                if m and m.group(1) != "return":
                    fields.append(m.group(1))
            depth += line.count("{") - line.count("}")
    return fields


def check_config_validate(root, findings):
    for header in sorted((root / "src").rglob("*_config.h")):
        text = header.read_text()
        impl = text
        sibling = header.with_suffix(".cc")
        if sibling.exists():
            impl += sibling.read_text()
        validate_bodies = "".join(
            m.group(0) for m in re.finditer(
                r"validate\(\)\s*const\s*\n\{.*?^\}", impl, re.M | re.S))
        if not validate_bodies:
            findings.append({
                "rule": "config-validate",
                "file": str(header.relative_to(root)),
                "line": 1,
                "message": "config header has no validate() implementation",
            })
            continue
        for field in struct_fields(text):
            if not re.search(r"\b" + re.escape(field) + r"\b",
                             validate_bodies):
                findings.append({
                    "rule": "config-validate",
                    "file": str(header.relative_to(root)),
                    "line": 1,
                    "message": f"field '{field}' is never mentioned by "
                               "validate()",
                })


def expected_guard(root, header):
    rel = header.relative_to(root)
    parts = list(rel.parts)
    if parts[0] == "src":
        parts = parts[1:]
    parts[-1] = parts[-1].replace(".h", "")
    return "AGSIM_" + "_".join(p.upper().replace("-", "_")
                               for p in parts) + "_H"


def check_include_guards(root, findings):
    for header in find_headers(root):
        text = header.read_text()
        m = GUARD.search(text)
        want = expected_guard(root, header)
        if not m:
            findings.append({
                "rule": "include-guard",
                "file": str(header.relative_to(root)),
                "line": 1,
                "message": f"missing include guard (expected {want})",
            })
        elif m.group(1) != want:
            findings.append({
                "rule": "include-guard",
                "file": str(header.relative_to(root)),
                "line": text[:m.start()].count("\n") + 1,
                "message": f"guard {m.group(1)} should be {want}",
            })


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=Path(__file__).parent.parent,
                        type=Path)
    parser.add_argument("--json", type=Path,
                        help="also write findings as JSON")
    args = parser.parse_args()
    root = args.root.resolve()

    findings = []
    check_naked_double(root, findings)
    check_config_validate(root, findings)
    check_include_guards(root, findings)

    for f in findings:
        print(f"{f['file']}:{f['line']}: [{f['rule']}] {f['message']}")
    print(f"lint: {len(findings)} finding(s)")
    if args.json:
        args.json.write_text(json.dumps(findings, indent=2) + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
