// Fixture: entropy and wall-clock reads in simulation code. Every
// line marked EXPECT must produce exactly one determinism finding;
// unmarked lines must stay silent (comments, strings, suppressions).

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

double
drawNoise()
{
    // Mentioning rand() or time() in prose must not trip the rule.
    std::random_device entropy;                     // EXPECT: determinism
    double v = double(rand());                      // EXPECT: determinism
    srand(42);                                      // EXPECT: determinism
    v += double(time(nullptr));                     // EXPECT: determinism
    const char *label = "calls rand() and time()";  // string, not a call
    (void)label;
    return v;
}

double
stamp()
{
    auto wall = std::chrono::system_clock::now();   // EXPECT: determinism
    auto mono =
        std::chrono::steady_clock::now();           // EXPECT: determinism
    // A declared time_point type is fine; only ::now() reads are reads.
    std::chrono::steady_clock::time_point heldType;
    (void)heldType;
    // lint: allow(determinism): fixture exercising the suppression path
    auto waived = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(wall - mono.time_since_epoch() -
                                         waived.time_since_epoch())
        .count();
}

} // namespace fixture
