// Fixture: deterministic simulation code — seeded engine, simulation
// timestamps. Must produce zero determinism findings.

#include <cstdint>

namespace fixture {

// A seeded xorshift stands in for common/rng.h: no entropy source.
struct SeededRng
{
    uint64_t state;
    explicit SeededRng(uint64_t seed) : state(seed ? seed : 1) {}
    uint64_t next()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }
};

double
advance(double simTime, double dt, SeededRng &rng)
{
    // Timestamps derive from simulation time, never the host clock.
    const double jitter = double(rng.next() % 1000) * 1e-9;
    return simTime + dt + jitter;
}

} // namespace fixture
