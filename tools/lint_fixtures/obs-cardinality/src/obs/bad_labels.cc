// Fixture: metric label values must be bounded — string literals,
// std::to_string of an index, or a *Name() enum-to-string helper.
// Free-form strings explode series cardinality.

#include <string>

namespace fixture {

struct Registry
{
    void counter(const std::string &, ...) {}
    void gauge(const std::string &, ...) {}
    void timer(const std::string &, ...) {}
};
Registry &registry();
const char *phaseName(int phase);

void
emitMetrics(const std::string &serverName, int socket, int phase)
{
    registry().counter("fleet.steps", {{"phase", phaseName(phase)}});
    registry().gauge("rail.load", {{"socket", std::to_string(socket)}});
    registry().counter("fleet.errors", {{"kind", "timeout"}});
    registry().counter("fleet.dumps",
                       {{"server", serverName}}); // EXPECT: obs-cardinality
    registry().timer("step.latency",
                     {{"host", serverName.substr(0, 8)}}); // EXPECT: obs-cardinality
    // lint: allow(obs-cardinality): fixture exercising suppression
    registry().gauge("debug.probe", {{"raw", serverName}});
}

} // namespace fixture
