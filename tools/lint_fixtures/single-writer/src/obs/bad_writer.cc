// Fixture: telemetry lane writes outside the pinned owner files. The
// single-writer contract (AG_SINGLE_WRITER) allows hub_->record only
// from fleet_stepper.cc / recovery_manager.cc, and direct lane writes
// (buffers[shard].record) only from telemetry_hub.h itself.

namespace fixture {

struct Hub
{
    void record(int series, double t, double v);
};

struct Lane
{
    void record(double t, double v);
};

struct RogueObserver
{
    Hub *hub_ = nullptr;
    Lane buffers[4];

    void sample(double t, double margin)
    {
        hub_->record(0, t, margin);        // EXPECT: single-writer
        buffers[0].record(t, margin);      // EXPECT: single-writer
        // lint: allow(single-writer): fixture exercising suppression
        hub_->record(1, t, margin);
    }
};

} // namespace fixture
