#ifndef FIXTURE_TELEMETRY_HUB_H
#define FIXTURE_TELEMETRY_HUB_H

// Fixture: the hub header owns the direct lane write, so the
// buffers[shard].record call below must produce no finding.

namespace fixture {

struct Lane
{
    void record(double t, double v);
};

struct Hub
{
    Lane buffers[8];

    void record(int shard, double t, double v)
    {
        buffers[shard].record(t, v);
    }
};

} // namespace fixture

#endif
