// Fixture: this path IS an allowed writer for TelemetryHub::record, so
// the call below must produce no finding.

namespace fixture {

struct Hub
{
    void record(int series, double t, double v);
};

struct Stepper
{
    Hub *hub_ = nullptr;

    void sweep(double t, double v) { hub_->record(0, t, v); }
};

} // namespace fixture
