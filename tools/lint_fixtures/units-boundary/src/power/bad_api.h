#ifndef FIXTURE_BAD_API_H
#define FIXTURE_BAD_API_H

// Fixture: raw-double unit parameters crossing a public header, and a
// unit-named value dropped bare into printf varargs.

#include <cstdio>

namespace fixture {

class RailModel
{
  public:
    void setLimit(double budgetWatts);          // EXPECT: units-boundary
    void setDroop(double droopMv, int rail);    // EXPECT: units-boundary
    // Rates and ratios are exempt: the composite is not the suffix unit.
    void setSlew(double voltsPerSecond);
    void setScale(double loadFraction);
    // lint: allow(units-boundary): fixture exercising suppression
    void setFloor(double floorVolts);

    void reportBare(double busVolts)            // EXPECT: units-boundary
    {
        printf("bus=%f\n", busVolts);           // EXPECT: units-boundary
        // Presentation helpers are the sanctioned spelling.
        printf("bus=%f\n", toMillivolts(busVolts));
    }

  private:
    static double toMillivolts(double v) { return v * 1e3; }
};

} // namespace fixture

#endif
