#!/usr/bin/env python3
"""Unit tests for tools/fleetdash.py (stdlib only, like test_lint).

Covers the StreamTailer's growing-file semantics — complete lines
only, partial trailing lines deferred, truncation/rotation restart,
missing-file tolerance — and the DashState/render aggregation the
dashboard builds on top of it.

Run directly or via ctest (fleetdash.selftest).
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import fleetdash  # noqa: E402


def sample(t, series, value):
    return json.dumps({
        "kind": "sample", "t": t, "series": series,
        "mean": value, "min": value, "max": value, "last": value,
        "n": 1, "p50": value, "p99": value, "total_n": 1,
    })


def alert(t, rule, edge):
    return json.dumps({
        "kind": "alert", "t": t, "rule": rule, "edge": edge,
        "short_burn": 2.5, "long_burn": 1.5,
    })


class TailerTest(unittest.TestCase):
    def setUp(self):
        fd, self.path = tempfile.mkstemp(suffix=".jsonl")
        os.close(fd)
        self.addCleanup(self._cleanup)
        self.lines = []
        self.tailer = fleetdash.StreamTailer(self.path)

    def _cleanup(self):
        if os.path.exists(self.path):
            os.unlink(self.path)

    def append(self, text):
        with open(self.path, "a") as fh:
            fh.write(text)

    def poll(self):
        return self.tailer.poll(self.lines.append)

    def test_reads_complete_lines_incrementally(self):
        self.append("one\ntwo\n")
        self.assertEqual(self.poll(), 2)
        self.append("three\n")
        self.assertEqual(self.poll(), 1)
        self.assertEqual(self.lines, ["one", "two", "three"])

    def test_partial_line_is_deferred_until_complete(self):
        self.append('{"kind": "sam')
        self.assertEqual(self.poll(), 0)
        self.append('ple"}\n')
        self.assertEqual(self.poll(), 1)
        self.assertEqual(self.lines, ['{"kind": "sample"}'])

    def test_partial_line_never_consumed_twice(self):
        self.append("full\npart")
        self.assertEqual(self.poll(), 1)
        self.assertEqual(self.poll(), 0)
        self.append("ial\n")
        self.assertEqual(self.poll(), 1)
        self.assertEqual(self.lines, ["full", "partial"])

    def test_truncation_restarts_from_offset_zero(self):
        self.append("aaaa\nbbbb\ncccc\n")
        self.assertEqual(self.poll(), 3)
        with open(self.path, "w") as fh:  # rotation: shorter file
            fh.write("dd\n")
        self.assertEqual(self.poll(), 1)
        self.assertEqual(self.lines[-1], "dd")

    def test_missing_file_is_not_an_error(self):
        os.unlink(self.path)
        self.assertEqual(self.poll(), 0)
        self.append("late\n")  # producer finally opened the stream
        self.assertEqual(self.poll(), 1)

    def test_empty_poll_on_unchanged_file(self):
        self.append("x\n")
        self.assertEqual(self.poll(), 1)
        self.assertEqual(self.poll(), 0)


class DashStateTest(unittest.TestCase):
    def setUp(self):
        self.state = fleetdash.DashState()

    def test_latest_sample_per_series_wins(self):
        self.state.ingest(sample(0.1, "service.depth", 5.0))
        self.state.ingest(sample(0.2, "service.depth", 9.0))
        self.assertEqual(self.state.samples["service.depth"]["last"],
                         9.0)
        self.assertEqual(self.state.last_t, 0.2)
        self.assertEqual(self.state.lines, 2)

    def test_alert_fire_then_resolve_clears_active(self):
        self.state.ingest(alert(1.0, "service.latency", "fire"))
        self.assertIn("service.latency", self.state.active_alerts)
        self.state.ingest(alert(2.0, "service.latency", "resolve"))
        self.assertNotIn("service.latency", self.state.active_alerts)
        self.assertEqual(len(self.state.recent_alerts), 2)

    def test_garbage_counts_as_bad_line(self):
        self.state.ingest("not json at all")
        self.state.ingest('{"kind": "mystery"}')
        self.assertEqual(self.state.bad_lines, 2)

    def test_render_mentions_active_alert(self):
        self.state.ingest(sample(0.5, "service.latency_ms", 80.0))
        self.state.ingest(alert(0.6, "service.latency", "fire"))
        text = fleetdash.render(self.state, "stream.jsonl")
        self.assertIn("SLO ALERTS ACTIVE: 1", text)
        self.assertIn("service.latency_ms", text)

    def test_render_quiet_without_alerts(self):
        text = fleetdash.render(self.state, "stream.jsonl")
        self.assertIn("all quiet", text)
        self.assertIn("(no samples yet)", text)


class OnceModeTest(unittest.TestCase):
    def test_once_snapshot_exit_codes(self):
        fd, path = tempfile.mkstemp(suffix=".jsonl")
        with os.fdopen(fd, "w") as fh:
            fh.write(sample(0.1, "service.rate", 1000.0) + "\n")
        try:
            self.assertEqual(fleetdash.main([path, "--once"]), 0)
        finally:
            os.unlink(path)
        self.assertEqual(fleetdash.main([path, "--once"]), 1)


if __name__ == "__main__":
    unittest.main()
