#!/usr/bin/env python3
"""Self-tests for tools/lint.py.

Fixture contract: every directory under tools/lint_fixtures/ is named
after one lint rule and contains a miniature source tree for it. Lines
that must produce a finding carry a trailing `// EXPECT: <rule>`
marker; every other line (including the allow-comment suppression
exercises) must stay silent. The test runs exactly that rule over the
fixture root and demands the finding set equal the marker set.

Runs on the stdlib only: python3 tools/test_lint.py
"""

import re
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import lint  # noqa: E402

FIXTURES = Path(__file__).parent / "lint_fixtures"
EXPECT = re.compile(r"//\s*EXPECT:\s*([\w-]+)")


def expected_findings(root):
    marks = set()
    for path in sorted(root.rglob("*")):
        if path.suffix not in (".h", ".cc", ".cpp"):
            continue
        rel = str(path.relative_to(root))
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            m = EXPECT.search(line)
            if m:
                marks.add((rel, lineno, m.group(1)))
    return marks


class FixtureTest(unittest.TestCase):
    """Each fixture dir must yield exactly its EXPECT-marked findings."""

    def run_fixture(self, rule):
        root = FIXTURES / rule
        self.assertTrue(root.is_dir(), f"missing fixture dir for {rule}")
        want = expected_findings(root)
        self.assertTrue(want, f"fixture for {rule} has no EXPECT markers")
        got = {(f["file"], f["line"], f["rule"])
               for f in lint.run_checks(root, checks=(rule,),
                                        engine="text")}
        self.assertEqual(got, want)

    def test_every_fixture_dir_is_covered(self):
        dirs = {p.name for p in FIXTURES.iterdir() if p.is_dir()}
        tested = {name[len("test_"):].replace("_", "-")
                  for name in dir(self) if name.startswith("test_")}
        self.assertTrue(dirs <= tested,
                        f"fixture dirs without a test: {dirs - tested}")

    def test_determinism(self):
        self.run_fixture("determinism")

    def test_units_boundary(self):
        self.run_fixture("units-boundary")

    def test_obs_cardinality(self):
        self.run_fixture("obs-cardinality")

    def test_single_writer(self):
        self.run_fixture("single-writer")


class StripperTest(unittest.TestCase):
    """The text engine's comment/string stripper."""

    def test_line_structure_is_preserved(self):
        text = 'int a; // rand()\n/* time(\nNULL) */ int b;\n'
        stripped = lint.strip_source_text(text)
        self.assertEqual(stripped.count("\n"), text.count("\n"))
        self.assertEqual(len(stripped.splitlines()[0]),
                         len(text.splitlines()[0]))

    def test_comments_are_blanked(self):
        stripped = lint.strip_source_text(
            "x = 1; // rand()\n/* std::random_device */ y = 2;\n")
        self.assertNotIn("rand", stripped)
        self.assertNotIn("random_device", stripped)
        self.assertIn("x = 1;", stripped)
        self.assertIn("y = 2;", stripped)

    def test_string_bodies_are_blanked(self):
        stripped = lint.strip_source_text(
            'const char *s = "calls rand() at time(NULL)";\n')
        self.assertNotIn("rand", stripped)
        # The quotes survive so literal-ness is still visible.
        self.assertIn('"', stripped)

    def test_raw_strings_are_blanked(self):
        stripped = lint.strip_source_text(
            'auto j = R"x({"k": "rand()"})x";\nint alive;\n')
        self.assertNotIn("rand", stripped)
        self.assertIn("int alive;", stripped)

    def test_escaped_quote_does_not_end_string(self):
        stripped = lint.strip_source_text(
            'auto s = "a\\"b rand() c"; int alive;\n')
        self.assertNotIn("rand", stripped)
        self.assertIn("int alive;", stripped)


class SuppressionTest(unittest.TestCase):
    """allow / allow-file comment semantics."""

    def run_on(self, source):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            target = root / "src" / "sim"
            target.mkdir(parents=True)
            (target / "probe.cc").write_text(source)
            return lint.run_checks(root, checks=("determinism",),
                                   engine="text")

    def test_unsuppressed_finding_fires(self):
        self.assertEqual(len(self.run_on("int x = rand();\n")), 1)

    def test_allow_covers_next_code_line(self):
        source = ("// lint: allow(determinism): test harness clock\n"
                  "// (continued prose line)\n"
                  "\n"
                  "int x = rand();\n")
        self.assertEqual(self.run_on(source), [])

    def test_allow_for_another_rule_does_not_cover(self):
        source = ("// lint: allow(units-boundary): wrong rule\n"
                  "int x = rand();\n")
        self.assertEqual(len(self.run_on(source)), 1)

    def test_allow_file_covers_whole_file(self):
        source = ("// lint: allow-file(determinism): harness code\n"
                  "int x = rand();\n"
                  "int y = rand();\n")
        self.assertEqual(self.run_on(source), [])


class CleanTreeTest(unittest.TestCase):
    def test_repo_is_lint_clean(self):
        repo = Path(__file__).parent.parent
        findings = lint.run_checks(repo, engine="text")
        self.assertEqual(
            findings, [],
            "tree has lint findings:\n" + "\n".join(
                f"{f['file']}:{f['line']}: [{f['rule']}] {f['message']}"
                for f in findings))


if __name__ == "__main__":
    unittest.main()
